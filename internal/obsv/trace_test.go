package obsv

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// tracedRegistry returns a fresh registry wired to its own small ring, so
// trace tests never pollute (or race with) the Default flight recorder.
func tracedRegistry(size int) (*Registry, *Ring) {
	reg := NewRegistry()
	ring := NewRing(size)
	reg.SetRing(ring)
	return reg, ring
}

func TestTraceSpanHierarchy(t *testing.T) {
	reg, ring := tracedRegistry(64)

	ctx, root := reg.StartTraceSpan(context.Background(), "root")
	if !root.Context().Valid() {
		t.Fatal("root span has no trace identity")
	}
	cctx, child := reg.StartTraceSpan(ctx, "child")
	_, grand := reg.StartTraceSpan(cctx, "grandchild")

	if child.Context().TraceID != root.Context().TraceID {
		t.Errorf("child trace %d != root trace %d", child.Context().TraceID, root.Context().TraceID)
	}
	if grand.Context().TraceID != root.Context().TraceID {
		t.Errorf("grandchild trace %d != root trace %d", grand.Context().TraceID, root.Context().TraceID)
	}
	if child.Context().SpanID == root.Context().SpanID {
		t.Error("child did not get its own span id")
	}

	grand.SetAttrInt("records", 42)
	grand.End()
	child.Fail(errors.New("boom"))
	child.End()
	root.End()

	spans := ring.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("ring holds %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Errorf("child parent %d, want root span %d", byName["child"].ParentID, byName["root"].SpanID)
	}
	if byName["grandchild"].ParentID != byName["child"].SpanID {
		t.Errorf("grandchild parent %d, want child span %d", byName["grandchild"].ParentID, byName["child"].SpanID)
	}
	if byName["root"].ParentID != 0 {
		t.Errorf("root parent %d, want 0", byName["root"].ParentID)
	}
	if byName["child"].Err != "boom" {
		t.Errorf("child error %q, want \"boom\"", byName["child"].Err)
	}
	found := false
	for _, a := range byName["grandchild"].Attrs {
		if a.Key == "records" && a.Value == "42" {
			found = true
		}
	}
	if !found {
		t.Errorf("grandchild attrs %v missing records=42", byName["grandchild"].Attrs)
	}

	// End feeds <name>.count and <name>.ns.
	if got := reg.Counter("root.count").Value(); got != 1 {
		t.Errorf("root.count = %d, want 1", got)
	}
	if got := reg.Histogram("root.ns").Count(); got != 1 {
		t.Errorf("root.ns count = %d, want 1", got)
	}
}

func TestTraceSpanNilSafety(t *testing.T) {
	var s *TSpan
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 1)
	s.Fail(errors.New("x"))
	if d := s.End(); d != 0 {
		t.Errorf("nil span End = %v, want 0", d)
	}
	if s.Context().Valid() {
		t.Error("nil span context should be invalid")
	}

	// Double End records once.
	reg, ring := tracedRegistry(16)
	_, sp := reg.StartTraceSpan(context.Background(), "once")
	sp.End()
	sp.End()
	if got := ring.Recorded(); got != 1 {
		t.Errorf("double End recorded %d spans, want 1", got)
	}
	if got := reg.Counter("once.count").Value(); got != 1 {
		t.Errorf("once.count = %d, want 1", got)
	}
}

func TestSpanContextPropagation(t *testing.T) {
	if _, ok := SpanContextFrom(context.Background()); ok {
		t.Error("background context should carry no span")
	}
	if _, ok := SpanContextFrom(nil); ok {
		t.Error("nil context should carry no span")
	}
	sc := SpanContext{TraceID: 7, SpanID: 9}
	got, ok := SpanContextFrom(ContextWithSpan(context.Background(), sc))
	if !ok || got != sc {
		t.Errorf("round-tripped context = %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestRingWraparoundAndReset(t *testing.T) {
	ring := NewRing(16)
	if ring.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", ring.Cap())
	}
	base := time.Unix(1000, 0)
	for i := 0; i < 40; i++ {
		ring.Record(&SpanRecord{
			SpanID: uint64(i + 1), TraceID: 1, Name: "s",
			Start: base.Add(time.Duration(i) * time.Millisecond),
		})
	}
	if got := ring.Recorded(); got != 40 {
		t.Errorf("Recorded = %d, want 40", got)
	}
	if got := ring.Dropped(); got != 24 {
		t.Errorf("Dropped = %d, want 24", got)
	}
	spans := ring.Snapshot()
	if len(spans) != 16 {
		t.Fatalf("snapshot holds %d spans, want 16", len(spans))
	}
	// The survivors are the newest 16, ordered by start.
	for i, s := range spans {
		if want := uint64(25 + i); s.SpanID != want {
			t.Errorf("span %d id = %d, want %d", i, s.SpanID, want)
		}
	}

	ring.Reset()
	if got := ring.Recorded(); got != 0 {
		t.Errorf("Recorded after Reset = %d, want 0", got)
	}
	if got := len(ring.Snapshot()); got != 0 {
		t.Errorf("snapshot after Reset holds %d spans, want 0", got)
	}

	// Nil ring is inert.
	var nr *Ring
	nr.Record(&SpanRecord{})
	if nr.Recorded() != 0 || nr.Dropped() != 0 || nr.Snapshot() != nil {
		t.Error("nil ring should be inert")
	}
}

func TestRingConcurrentWriters(t *testing.T) {
	ring := NewRing(64)
	var wg sync.WaitGroup
	const writers, per = 8, 500
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ring.Record(&SpanRecord{TraceID: uint64(w + 1), SpanID: uint64(i + 1), Name: "w"})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, s := range ring.Snapshot() {
				if s.Name != "w" {
					t.Errorf("torn record: %+v", s)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := ring.Recorded(); got != writers*per {
		t.Errorf("Recorded = %d, want %d", got, writers*per)
	}
}

// mkSpan builds a deterministic record for exporter tests.
func mkSpan(trace, span, parent uint64, name string, startMs, durMs int64) SpanRecord {
	return SpanRecord{
		TraceID: trace, SpanID: span, ParentID: parent, Name: name,
		Start:    time.Unix(0, startMs*int64(time.Millisecond)),
		Duration: time.Duration(durMs) * time.Millisecond,
	}
}

func TestChromeTraceNestingAndValidation(t *testing.T) {
	// A root with a sequential child, two overlapping "shard" children
	// (the parallel fan-out shape), and a second disjoint trace.
	spans := []SpanRecord{
		mkSpan(1, 1, 0, "root", 0, 100),
		mkSpan(1, 2, 1, "compile", 0, 10),
		mkSpan(1, 3, 1, "shard", 20, 50),
		mkSpan(1, 4, 1, "shard", 20, 60),
		mkSpan(1, 5, 1, "merge", 85, 10),
		mkSpan(2, 6, 0, "other", 200, 30),
		// Orphan: parent evicted from the ring — must render as a root.
		mkSpan(3, 7, 999, "orphan", 300, 5),
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("invalid trace: %v\n%s", err, buf.String())
	}
	if n != len(spans) {
		t.Errorf("validated %d X events, want %d", n, len(spans))
	}
	// The two overlapping shards cannot share a lane.
	out := buf.String()
	if !strings.Contains(out, `"shard"`) || !strings.Contains(out, `"process_name"`) {
		t.Errorf("trace output missing expected names:\n%s", out)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateChromeTrace(buf.Bytes()); err != nil || n != 0 {
		t.Errorf("empty trace: n=%d err=%v", n, err)
	}
}

func TestChromeTraceLiveSpans(t *testing.T) {
	// Drive real concurrent spans through a registry and check the
	// exported trace still validates — wall-clock overlap included.
	reg, ring := tracedRegistry(256)
	ctx, root := reg.StartTraceSpan(context.Background(), "run")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := reg.StartTraceSpan(ctx, "worker")
			sp.SetAttrInt("worker", int64(w))
			time.Sleep(time.Millisecond)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, ring.Snapshot()); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("live trace invalid: %v\n%s", err, buf.String())
	}
	if n != 5 {
		t.Errorf("validated %d events, want 5", n)
	}
}

func TestValidateChromeTraceRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"missing fields": `{"traceEvents":[{"ph":"X","name":"a"}]}`,
		"overlap": `{"traceEvents":[
			{"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},
			{"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":1}]}`,
	}
	for label, in := range cases {
		if _, err := ValidateChromeTrace([]byte(in)); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
	// Bare-array form is accepted.
	if n, err := ValidateChromeTrace([]byte(`[{"name":"a","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]`)); err != nil || n != 1 {
		t.Errorf("bare array: n=%d err=%v", n, err)
	}
}

func TestPrometheusTextExposition(t *testing.T) {
	reg, _ := tracedRegistry(16)
	reg.Counter("demo.requests").Add(7)
	reg.Gauge("demo.depth").Set(3)
	h := reg.Histogram("demo.latency.ns")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}

	var buf bytes.Buffer
	if err := WritePrometheusText(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	page := buf.String()

	for _, want := range []string{
		"netcluster_demo_requests_total 7",
		"netcluster_demo_depth 3",
		"# TYPE netcluster_demo_latency_ns histogram",
		`netcluster_demo_latency_ns_bucket{le="+Inf"} 1000`,
		"netcluster_demo_latency_ns_count 1000",
		"netcluster_demo_latency_ns_p50",
		"netcluster_demo_latency_ns_p99",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q:\n%s", want, page)
		}
	}

	// Structural parse: every sample line is "name{labels} value" with a
	// preceding TYPE comment, no duplicate series.
	seen := map[string]bool{}
	typed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(page))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		series := fields[0]
		if seen[series] {
			t.Errorf("duplicate series %q", series)
		}
		seen[series] = true
		var f float64
		if _, err := fmt.Sscanf(fields[1], "%g", &f); err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
		// Cumulative-bucket monotonicity is implied by construction; here
		// just check each sample belongs to a declared family.
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && typed[strings.TrimSuffix(name, suf)] {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if !typed[base] {
			t.Errorf("series %q has no TYPE declaration", series)
		}
	}

	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := WritePrometheusText(&buf2, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("two renders of the same snapshot differ")
	}
}

func TestPromNameSanitization(t *testing.T) {
	if got := promName("bgp.lookup.count"); got != "netcluster_bgp_lookup_count" {
		t.Errorf("promName = %q", got)
	}
	if got := promName("weird-metric/x"); got != "netcluster_weird_metric_x" {
		t.Errorf("promName = %q", got)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	// Uniform 1..1024: the true median is ~512; log2 interpolation lands
	// within the surrounding bucket [512,1023].
	var h Histogram
	for i := int64(1); i <= 1024; i++ {
		h.Observe(i)
	}
	if p50 := h.Quantile(0.5); p50 < 256 || p50 > 1023 {
		t.Errorf("uniform p50 = %g, want within [256,1023]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 512 || p99 > 1024 {
		t.Errorf("uniform p99 = %g, want within [512,1024]", p99)
	}
	if q0 := h.Quantile(0); q0 > 1 {
		t.Errorf("q=0 = %g, want <= 1", q0)
	}
	// q=1 resolves inside the bucket holding the max (1024 ∈ [1024,2047]).
	if q1 := h.Quantile(1); q1 < 1024 || q1 > 2047 {
		t.Errorf("q=1 = %g, want within [1024,2047]", q1)
	}

	// Point mass: every observation identical — all quantiles fall in
	// that value's bucket.
	var pm Histogram
	for i := 0; i < 100; i++ {
		pm.Observe(100)
	}
	lo, hi := float64(64), float64(127)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if v := pm.Quantile(q); v < lo || v > hi {
			t.Errorf("point-mass q=%g = %g, want within [%g,%g]", q, v, lo, hi)
		}
	}

	// Quantiles are monotone in q.
	var mx Histogram
	for i := int64(0); i < 1000; i++ {
		mx.Observe(i * i)
	}
	prev := math.Inf(-1)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.95, 0.999} {
		v := mx.Quantile(q)
		if v < prev {
			t.Errorf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}

	// Empty histogram: zero everywhere.
	var e Histogram
	if v := e.Quantile(0.5); v != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", v)
	}

	// Snapshot carries P50 <= P95 <= P99.
	s := h.Snapshot()
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Errorf("snapshot quantiles not ordered: p50=%g p95=%g p99=%g", s.P50, s.P95, s.P99)
	}
}

func TestTraceHandlerAndMetricsHandlerWired(t *testing.T) {
	// The default debug handler must serve /metrics and /debug/trace.
	_, sp := StartTraceSpan(context.Background(), "handler.probe")
	sp.End()

	h := DebugHandler()
	for _, path := range []string{"/metrics", "/debug/trace", "/debug/vars"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("%s returned %d", path, rec.Code)
		}
		if rec.Body.Len() == 0 {
			t.Errorf("%s returned empty body", path)
		}
	}

	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := mrec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, PrometheusContentType)
	}

	rec := httptest.NewRecorder()
	TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if n, err := ValidateChromeTrace(rec.Body.Bytes()); err != nil || n == 0 {
		t.Errorf("/debug/trace payload invalid: n=%d err=%v", n, err)
	}
}
