// Package placement implements the paper's Section 4.1.4 proxy placement
// strategies:
//
//   - strategy 1 (the one the paper evaluates): assign one or more proxies
//     to each busy client cluster, scaled by a load metric — number of
//     clients, requests, URLs accessed, or bytes fetched;
//   - strategy 2 (described as "more practical, [but] complicated"): place
//     a proxy in front of each cluster and group the proxies into proxy
//     clusters by the origin AS of the cluster's identifying prefix, so
//     proxies under one administration can cooperate.
package placement

import (
	"fmt"
	"sort"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/cluster"
)

// Metric selects the load measure that scales proxy counts.
type Metric int

const (
	// ByClients scales proxies with cluster population.
	ByClients Metric = iota
	// ByRequests scales with request volume.
	ByRequests
	// ByURLs scales with the number of distinct URLs accessed.
	ByURLs
	// ByBytes scales with bytes fetched from the server.
	ByBytes
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case ByClients:
		return "clients"
	case ByRequests:
		return "requests"
	case ByURLs:
		return "urls"
	case ByBytes:
		return "bytes"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

func (m Metric) value(c *cluster.Cluster) int64 {
	switch m {
	case ByClients:
		return int64(c.NumClients())
	case ByRequests:
		return int64(c.Requests)
	case ByURLs:
		return int64(c.NumURLs())
	case ByBytes:
		return c.Bytes
	default:
		panic(fmt.Sprintf("placement: unknown metric %d", int(m)))
	}
}

// Assignment is one cluster's proxy allocation.
type Assignment struct {
	Cluster *cluster.Cluster
	// Proxies is how many proxies front the cluster (≥ 1); they form a
	// cooperating proxy cluster in the paper's terms.
	Proxies int
	Load    int64 // the metric value that sized the allocation
}

// Plan is the outcome of strategy 1.
type Plan struct {
	Metric       Metric
	PerProxy     int64 // load one proxy absorbs
	Assignments  []Assignment
	TotalProxies int
}

// PerCluster builds a strategy-1 plan: every busy cluster (those covering
// coverFrac of requests, the paper uses 0.70) receives
// ceil(load/perProxy) proxies, at least one. perProxy must be positive.
func PerCluster(res *cluster.Result, coverFrac float64, metric Metric, perProxy int64) (Plan, error) {
	if perProxy <= 0 {
		return Plan{}, fmt.Errorf("placement: per-proxy capacity must be positive, got %d", perProxy)
	}
	th := res.ThresholdBusy(coverFrac)
	plan := Plan{Metric: metric, PerProxy: perProxy}
	for _, c := range th.Busy {
		load := metric.value(c)
		n := int((load + perProxy - 1) / perProxy)
		if n < 1 {
			n = 1
		}
		plan.Assignments = append(plan.Assignments, Assignment{Cluster: c, Proxies: n, Load: load})
		plan.TotalProxies += n
	}
	sort.Slice(plan.Assignments, func(i, j int) bool {
		if plan.Assignments[i].Load != plan.Assignments[j].Load {
			return plan.Assignments[i].Load > plan.Assignments[j].Load
		}
		return plan.Assignments[i].Cluster.Requests > plan.Assignments[j].Cluster.Requests
	})
	return plan, nil
}

// ProxyCluster is a strategy-2 group: proxies whose client clusters'
// prefixes originate in the same AS (and, when location data is supplied,
// the same country). Proxies in one group belong to one administrative
// domain and can cooperate (shared cache hierarchy, shared provisioning).
type ProxyCluster struct {
	OriginAS uint32 // 0 groups the clusters whose origin is unknown
	Country  string // set by GroupByASAndLocation; empty otherwise
	Members  []Assignment
	Proxies  int
	Requests int
}

// GroupByAS buckets a plan's assignments by the origin AS recorded in the
// merged table's provenance. Clusters whose prefix carries no AS
// information (registry dumps) fall into the OriginAS == 0 group.
func GroupByAS(plan Plan, table *bgp.Merged) []ProxyCluster {
	return groupBy(plan, table, nil)
}

// GroupByASAndLocation additionally splits groups by country, using a
// whois-style lookup from AS number to country code (unknown ASes get
// country ""). This is the full form of the paper's strategy 2: "all
// proxies belonging to the same AS and located geographically nearby will
// be grouped together".
func GroupByASAndLocation(plan Plan, table *bgp.Merged, countryOf func(asn uint32) string) []ProxyCluster {
	if countryOf == nil {
		countryOf = func(uint32) string { return "" }
	}
	return groupBy(plan, table, countryOf)
}

func groupBy(plan Plan, table *bgp.Merged, countryOf func(uint32) string) []ProxyCluster {
	type key struct {
		asn     uint32
		country string
	}
	groups := map[key]*ProxyCluster{}
	for _, a := range plan.Assignments {
		var origin uint32
		if prov, ok := table.Provenance(a.Cluster.Prefix); ok {
			origin = prov.OriginAS
		}
		k := key{asn: origin}
		if countryOf != nil {
			k.country = countryOf(origin)
		}
		g := groups[k]
		if g == nil {
			g = &ProxyCluster{OriginAS: origin, Country: k.country}
			groups[k] = g
		}
		g.Members = append(g.Members, a)
		g.Proxies += a.Proxies
		g.Requests += a.Cluster.Requests
	}
	out := make([]ProxyCluster, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		if out[i].OriginAS != out[j].OriginAS {
			return out[i].OriginAS < out[j].OriginAS
		}
		return out[i].Country < out[j].Country
	})
	return out
}
