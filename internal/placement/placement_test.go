package placement

import (
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/weblog"
)

// buildResult makes a log with three clusters of known sizes, clustered
// against a table whose entries carry origin ASes.
func buildResult(t *testing.T) (*cluster.Result, *bgp.Merged) {
	t.Helper()
	snap := &bgp.Snapshot{Name: "T", Kind: bgp.SourceBGP, Entries: []bgp.Entry{
		{Prefix: netutil.MustParsePrefix("10.1.0.0/16"), ASPath: []uint32{100, 7018}},
		{Prefix: netutil.MustParsePrefix("10.2.0.0/16"), ASPath: []uint32{100, 7018}},
		{Prefix: netutil.MustParsePrefix("10.3.0.0/16"), ASPath: []uint32{100, 701}},
		{Prefix: netutil.MustParsePrefix("10.4.0.0/16")}, // no AS info
	}}
	m := bgp.NewMerged()
	m.Add(snap)

	l := &weblog.Log{
		Name: "t", Start: time.Unix(0, 0), Duration: time.Hour,
		Resources: []weblog.Resource{{Path: "/a", Size: 1000}},
	}
	emit := func(client string, n int) {
		a := netutil.MustParseAddr(client)
		for i := 0; i < n; i++ {
			l.Requests = append(l.Requests, weblog.Request{Time: uint32(i), Client: a})
		}
	}
	emit("10.1.0.1", 60)
	emit("10.1.0.2", 40) // cluster 10.1/16: 100 requests, 2 clients
	emit("10.2.0.1", 50) // cluster 10.2/16: 50 requests
	emit("10.3.0.1", 30) // cluster 10.3/16: 30 requests
	emit("10.4.0.1", 20) // cluster 10.4/16: 20 requests, no AS
	return cluster.ClusterLog(l, cluster.NetworkAware{Table: m}), m
}

func TestPerClusterPlan(t *testing.T) {
	res, _ := buildResult(t)
	// 100% coverage so every cluster is planned; 40 requests per proxy.
	plan, err := PerCluster(res, 1.0, ByRequests, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments) != 4 {
		t.Fatalf("assignments = %d", len(plan.Assignments))
	}
	// Sorted by load: 100, 50, 30, 20 → proxies 3, 2, 1, 1.
	wantProxies := []int{3, 2, 1, 1}
	for i, a := range plan.Assignments {
		if a.Proxies != wantProxies[i] {
			t.Errorf("assignment %d (%v, load %d): proxies = %d, want %d",
				i, a.Cluster.Prefix, a.Load, a.Proxies, wantProxies[i])
		}
	}
	if plan.TotalProxies != 7 {
		t.Fatalf("total proxies = %d", plan.TotalProxies)
	}
}

func TestPerClusterThresholding(t *testing.T) {
	res, _ := buildResult(t)
	// 70% of 200 = 140 → busy clusters: 100 + 50 = 150 ≥ 140 → 2 clusters.
	plan, err := PerCluster(res, 0.70, ByRequests, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments) != 2 {
		t.Fatalf("busy assignments = %d, want 2", len(plan.Assignments))
	}
	for _, a := range plan.Assignments {
		if a.Proxies != 1 {
			t.Errorf("big per-proxy capacity must yield 1 proxy, got %d", a.Proxies)
		}
	}
}

func TestPerClusterMetrics(t *testing.T) {
	res, _ := buildResult(t)
	for _, m := range []Metric{ByClients, ByRequests, ByURLs, ByBytes} {
		plan, err := PerCluster(res, 1.0, m, 1)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for _, a := range plan.Assignments {
			if a.Load != m.value(a.Cluster) {
				t.Errorf("%v: load mismatch", m)
			}
			if int64(a.Proxies) != a.Load {
				t.Errorf("%v: perProxy=1 must give proxies == load", m)
			}
		}
	}
	if _, err := PerCluster(res, 1.0, ByRequests, 0); err == nil {
		t.Error("zero capacity must fail")
	}
}

func TestMetricString(t *testing.T) {
	for m, want := range map[Metric]string{
		ByClients: "clients", ByRequests: "requests", ByURLs: "urls", ByBytes: "bytes",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
}

func TestGroupByAS(t *testing.T) {
	res, table := buildResult(t)
	plan, err := PerCluster(res, 1.0, ByRequests, 40)
	if err != nil {
		t.Fatal(err)
	}
	groups := GroupByAS(plan, table)
	// AS 7018 gets clusters 10.1 and 10.2; AS 701 gets 10.3; unknown gets 10.4.
	if len(groups) != 3 {
		t.Fatalf("groups = %d: %+v", len(groups), groups)
	}
	if groups[0].OriginAS != 7018 || len(groups[0].Members) != 2 || groups[0].Requests != 150 {
		t.Fatalf("first group = %+v", groups[0])
	}
	if groups[0].Proxies != 5 {
		t.Fatalf("AS 7018 proxies = %d, want 3+2", groups[0].Proxies)
	}
	var sawUnknown bool
	for _, g := range groups {
		if g.OriginAS == 0 {
			sawUnknown = true
			if len(g.Members) != 1 || g.Members[0].Cluster.Prefix.String() != "10.4.0.0/16" {
				t.Fatalf("unknown-AS group = %+v", g)
			}
		}
	}
	if !sawUnknown {
		t.Fatal("missing unknown-AS group")
	}
	// Total proxies preserved.
	total := 0
	for _, g := range groups {
		total += g.Proxies
	}
	if total != plan.TotalProxies {
		t.Fatalf("grouping changed proxy count: %d vs %d", total, plan.TotalProxies)
	}
}

func TestGroupByASAndLocation(t *testing.T) {
	res, table := buildResult(t)
	plan, err := PerCluster(res, 1.0, ByRequests, 40)
	if err != nil {
		t.Fatal(err)
	}
	// AS 7018 spans two countries: its two clusters split into two groups.
	countries := map[uint32]string{7018: "", 701: "jp"}
	calls := 0
	countryOf := func(asn uint32) string {
		calls++
		if asn == 7018 {
			// Pretend whois places 7018's clusters in different... a
			// single AS has one country in whois, so model it plainly:
			return "us"
		}
		return countries[asn]
	}
	groups := GroupByASAndLocation(plan, table, countryOf)
	for _, g := range groups {
		switch g.OriginAS {
		case 7018:
			if g.Country != "us" || len(g.Members) != 2 {
				t.Fatalf("AS 7018 group = %+v", g)
			}
		case 701:
			if g.Country != "jp" {
				t.Fatalf("AS 701 group = %+v", g)
			}
		}
	}
	if calls == 0 {
		t.Fatal("countryOf never consulted")
	}
	// Nil lookup degrades to plain AS grouping.
	plain := GroupByASAndLocation(plan, table, nil)
	if len(plain) != len(GroupByAS(plan, table)) {
		t.Fatal("nil countryOf must match GroupByAS")
	}
}
