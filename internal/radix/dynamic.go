package radix

import (
	"github.com/netaware/netcluster/internal/netutil"
)

// Dynamic is the churn-capable sibling of Multibit: the same stride-8
// controlled-prefix-expansion layout, extended with removal and an
// incremental Freeze. It exists so a long-running service can absorb
// BGP announce/withdraw deltas without rebuilding the whole table:
//
//   - InsertRanked and Remove edit only the slot block of the node the
//     prefix terminates in (expansion never crosses a stride boundary,
//     so both operations are node-local);
//   - Freeze reuses the arrays of the previous freeze, re-rendering only
//     the slot blocks that changed since and appending blocks for new
//     nodes, so its cost is proportional to the churn, not the table.
//
// Node and entry identity is stable across freezes: every node keeps the
// flat-array index it was first assigned (the root is always node 0, new
// nodes append), and every entry keeps its row in the shared entry
// tables. Removed entries leave dead rows and emptied subtrees leave
// dead node blocks — the price of never moving a published index. The
// caller watches DeadEntries/NumNodes and rebuilds from source when the
// garbage fraction crosses its threshold (see bgp.Incremental), exactly
// as long-running routers periodically recompact their FIBs.
//
// Keys are (prefix, rank) pairs, not bare prefixes: the bgp compiler
// stores one prefix under two ranks when it appears in both source
// classes, and a withdrawal must be able to remove one class's entry
// while the other survives.
//
// Dynamic is single-writer. The *Frozen values Freeze returns are
// immutable and safe for unlimited concurrent readers, including readers
// still holding earlier generations — the RCU pattern internal/churn
// builds on.
type Dynamic[V any] struct {
	nodes []*dynNode[V] // index == flat-array node index; nodes[0] is the root
	keys  map[dynKey]*dynEntry[V]

	// dirty marks node indices whose slot block changed since the last
	// freeze; nodes created since then (index >= frozenNodes) are
	// implicitly dirty.
	dirty       map[int32]struct{}
	frozenNodes int

	// The entry arena: append-only rows shared by every Frozen generation.
	// Rows of removed entries become garbage but are never reused, so a
	// published generation can keep reading them.
	prefixes []netutil.Prefix
	ranks    []int16
	values   []V

	// Rendered arrays of the last freeze, reused as the copy source.
	lastChildren []int32
	lastSlots    []int32

	deadEntries int
}

type dynKey struct {
	prefix netutil.Prefix
	rank   int16
}

type dynEntry[V any] struct {
	prefix netutil.Prefix
	value  V
	rank   int16
	// row is the entry's index in the arena, or -1 until first frozen.
	row int32
}

type dynNode[V any] struct {
	idx      int32
	children [256]*dynNode[V]
	entries  [256]*dynEntry[V]
	// terminals holds every live entry whose prefix terminates in this
	// node's byte — the set a Remove re-renders slots from.
	terminals map[dynKey]*dynEntry[V]
}

// NewDynamic returns an empty table.
func NewDynamic[V any]() *Dynamic[V] {
	d := &Dynamic[V]{
		keys:  make(map[dynKey]*dynEntry[V]),
		dirty: make(map[int32]struct{}),
	}
	d.nodes = append(d.nodes, &dynNode[V]{idx: 0})
	return d
}

// Len returns the number of live (prefix, rank) keys.
func (d *Dynamic[V]) Len() int { return len(d.keys) }

// NumNodes returns the number of allocated stride-8 nodes, including
// blocks emptied by removals (they are never reclaimed in place).
func (d *Dynamic[V]) NumNodes() int { return len(d.nodes) }

// DeadEntries returns the number of arena rows orphaned by removals and
// replacements since construction — the caller's compaction signal.
func (d *Dynamic[V]) DeadEntries() int { return d.deadEntries }

// better is the deterministic total order on slot occupancy: higher rank
// wins, ties broken by longer prefix, then by prefix comparison. Insert
// and the Remove re-render use the same order, so an incremental build
// and a from-scratch build of the same key set render identical tables.
func better[V any](a, b *dynEntry[V]) bool {
	if a.rank != b.rank {
		return a.rank > b.rank
	}
	if a.prefix.Bits() != b.prefix.Bits() {
		return a.prefix.Bits() > b.prefix.Bits()
	}
	return netutil.ComparePrefix(a.prefix, b.prefix) < 0
}

// expansion returns the slot span prefix p covers in its terminating
// node: base is the first slot, span the number of consecutive slots.
func expansion(p netutil.Prefix) (fullBytes, base, span int) {
	bits := p.Bits()
	fullBytes = bits / 8
	if bits%8 == 0 && bits > 0 {
		fullBytes--
	}
	rem := bits - fullBytes*8
	if bits == 0 {
		rem = 0
	}
	if rem > 0 {
		base = int(p.Addr().Octets()[fullBytes]) & (0xFF << (8 - rem))
	}
	span = 1 << (8 - rem)
	return fullBytes, base, span
}

// InsertRanked adds or replaces the value for (p, rank). It reports
// whether the key was newly inserted. rank must be in [0, 1<<14], as in
// Multibit.InsertRanked.
func (d *Dynamic[V]) InsertRanked(p netutil.Prefix, v V, rank int) bool {
	if rank < 0 || rank > 1<<14 {
		panic("radix: InsertRanked rank out of range")
	}
	key := dynKey{prefix: p, rank: int16(rank)}
	old, existed := d.keys[key]
	e := &dynEntry[V]{prefix: p, value: v, rank: int16(rank), row: -1}
	d.keys[key] = e

	fullBytes, base, span := expansion(p)
	octets := p.Addr().Octets()
	n := d.nodes[0]
	for i := 0; i < fullBytes; i++ {
		b := octets[i]
		if n.children[b] == nil {
			child := &dynNode[V]{idx: int32(len(d.nodes))}
			d.nodes = append(d.nodes, child)
			n.children[b] = child
			d.markDirty(n) // the child pointer lives in n's block
		}
		n = n.children[b]
	}
	if n.terminals == nil {
		n.terminals = make(map[dynKey]*dynEntry[V])
	}
	n.terminals[key] = e
	if existed {
		if old.row >= 0 {
			d.deadEntries++
		}
		// The old entry occupies exactly the slots the new one is about to
		// take (same key, same span, same order position), so the plain
		// render below replaces it everywhere it is visible.
	}
	changed := false
	for s := 0; s < span; s++ {
		slot := base + s
		cur := n.entries[slot]
		if cur == nil || (existed && cur == old) || better(e, cur) {
			n.entries[slot] = e
			changed = true
		}
	}
	if changed {
		d.markDirty(n)
	}
	return !existed
}

// Remove deletes the (p, rank) key, re-rendering the slots it covered
// from the terminating node's remaining entries. It reports whether the
// key was present.
func (d *Dynamic[V]) Remove(p netutil.Prefix, rank int) bool {
	key := dynKey{prefix: p, rank: int16(rank)}
	e, ok := d.keys[key]
	if !ok {
		return false
	}
	delete(d.keys, key)

	fullBytes, base, span := expansion(p)
	octets := p.Addr().Octets()
	n := d.nodes[0]
	for i := 0; i < fullBytes; i++ {
		n = n.children[octets[i]] // the path exists: the key was inserted through it
	}
	delete(n.terminals, key)
	if e.row >= 0 {
		d.deadEntries++
	}
	changed := false
	for s := 0; s < span; s++ {
		slot := base + s
		if n.entries[slot] != e {
			continue // shadowed here by a better entry; nothing to restore
		}
		var best *dynEntry[V]
		for _, t := range n.terminals {
			if covers(t.prefix, slot) && (best == nil || better(t, best)) {
				best = t
			}
		}
		n.entries[slot] = best
		changed = true
	}
	if changed {
		d.markDirty(n)
	}
	return true
}

// covers reports whether prefix t's expansion includes slot within t's
// terminating node.
func covers(t netutil.Prefix, slot int) bool {
	_, base, span := expansion(t)
	return slot >= base && slot < base+span
}

func (d *Dynamic[V]) markDirty(n *dynNode[V]) {
	if n.idx < int32(d.frozenNodes) {
		d.dirty[n.idx] = struct{}{}
	}
	// Nodes newer than the last freeze are re-rendered unconditionally.
}

// Freeze renders the current table as an immutable Frozen. The first
// call renders every node; later calls copy the previous arrays and
// re-render only dirty and new blocks. The returned Frozen shares the
// append-only entry arena with the Dynamic (rows < its length are never
// mutated), so generations cost two int32 array copies, not a rebuild.
func (d *Dynamic[V]) Freeze() *Frozen[V] {
	nNodes := len(d.nodes)
	children := make([]int32, nNodes*256)
	slots := make([]int32, nNodes*256)
	copy(children, d.lastChildren)
	copy(slots, d.lastSlots)

	render := func(n *dynNode[V]) {
		off := int(n.idx) * 256
		for b := 0; b < 256; b++ {
			ci := int32(0)
			if c := n.children[b]; c != nil {
				ci = c.idx
			}
			children[off+b] = ci
			ei := int32(-1)
			if e := n.entries[b]; e != nil {
				if e.row < 0 {
					e.row = int32(len(d.prefixes))
					d.prefixes = append(d.prefixes, e.prefix)
					d.ranks = append(d.ranks, e.rank)
					d.values = append(d.values, e.value)
				}
				ei = e.row
			}
			slots[off+b] = ei
		}
	}
	for idx := range d.dirty {
		render(d.nodes[idx])
	}
	for i := d.frozenNodes; i < nNodes; i++ {
		render(d.nodes[i])
	}
	d.dirty = make(map[int32]struct{})
	d.frozenNodes = nNodes
	d.lastChildren = children
	d.lastSlots = slots

	nRows := len(d.prefixes)
	return &Frozen[V]{
		children: children,
		slots:    slots,
		prefixes: d.prefixes[:nRows:nRows],
		ranks:    d.ranks[:nRows:nRows],
		values:   d.values[:nRows:nRows],
		size:     len(d.keys),
	}
}

// Walk visits every live (prefix, rank, value) triple in unspecified
// order; fn returning false stops the walk. Compaction rebuilds use it
// to re-seed a fresh Dynamic.
func (d *Dynamic[V]) Walk(fn func(p netutil.Prefix, rank int, v V) bool) {
	for k, e := range d.keys {
		if !fn(k.prefix, int(k.rank), e.value) {
			return
		}
	}
}
