package radix

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/netaware/netcluster/internal/netutil"
)

// refModel is the brute-force oracle for ranked lookup: a flat key set
// scanned linearly with the same (rank desc, bits desc, ComparePrefix)
// order better() uses.
type refModel struct {
	entries map[dynKey]int
}

func newRefModel() *refModel {
	return &refModel{entries: make(map[dynKey]int)}
}

func (r *refModel) insert(p netutil.Prefix, v, rank int) {
	r.entries[dynKey{prefix: p, rank: int16(rank)}] = v
}

func (r *refModel) remove(p netutil.Prefix, rank int) {
	delete(r.entries, dynKey{prefix: p, rank: int16(rank)})
}

func (r *refModel) lookup(addr netutil.Addr) (netutil.Prefix, int, bool) {
	var bestKey dynKey
	bestVal := 0
	found := false
	for k, v := range r.entries {
		if k.prefix.Bits() == 0 || !k.prefix.Contains(addr) {
			continue // /0 never matches, as in Multibit and the bgp compiler
		}
		if !found || refBetter(k, bestKey) {
			bestKey, bestVal, found = k, v, true
		}
	}
	return bestKey.prefix, bestVal, found
}

func refBetter(a, b dynKey) bool {
	if a.rank != b.rank {
		return a.rank > b.rank
	}
	if a.prefix.Bits() != b.prefix.Bits() {
		return a.prefix.Bits() > b.prefix.Bits()
	}
	return netutil.ComparePrefix(a.prefix, b.prefix) < 0
}

func randPrefix(rng *rand.Rand) netutil.Prefix {
	bits := rng.Intn(32) + 1 // 1..32; /0 is excluded from match structures
	addr := netutil.Addr(rng.Uint32()) & netutil.Addr(netutil.MaskOf(bits))
	return netutil.PrefixFrom(addr, bits)
}

// probeSet returns the boundary addresses of every prefix in the model
// plus one-off neighbors — the points where a lookup answer can change.
func probeSet(keys map[dynKey]int) []netutil.Addr {
	seen := make(map[netutil.Addr]struct{})
	var out []netutil.Addr
	add := func(a netutil.Addr) {
		if _, dup := seen[a]; !dup {
			seen[a] = struct{}{}
			out = append(out, a)
		}
	}
	for k := range keys {
		first, last := k.prefix.First(), k.prefix.Last()
		add(first)
		add(last)
		add(first - 1) // wraps at 0: still a valid probe point
		add(last + 1)
	}
	return out
}

func TestDynamicBasic(t *testing.T) {
	d := NewDynamic[string]()
	p := netutil.MustParsePrefix("10.1.0.0/16")
	if !d.InsertRanked(p, "a", 16) {
		t.Fatal("first insert reported existing key")
	}
	if d.InsertRanked(p, "b", 16) {
		t.Fatal("re-insert reported new key")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	f := d.Freeze()
	gp, v, ok := f.Lookup(netutil.MustParseAddr("10.1.2.3"))
	if !ok || gp != p || v != "b" {
		t.Fatalf("Lookup = %v %q %v, want %v %q true", gp, v, ok, p, "b")
	}
	if _, _, ok := f.Lookup(netutil.MustParseAddr("11.0.0.1")); ok {
		t.Fatal("lookup outside the prefix matched")
	}
	if !d.Remove(p, 16) {
		t.Fatal("Remove of live key reported absent")
	}
	if d.Remove(p, 16) {
		t.Fatal("second Remove reported present")
	}
	if _, _, ok := d.Freeze().Lookup(netutil.MustParseAddr("10.1.2.3")); ok {
		t.Fatal("lookup matched after removal")
	}
}

func TestDynamicRankShadowing(t *testing.T) {
	// The same prefix under two ranks: the higher rank wins lookups, and
	// removing it must resurface the lower-ranked twin.
	d := NewDynamic[string]()
	p := netutil.MustParsePrefix("172.16.0.0/12")
	d.InsertRanked(p, "primary", 64+12)
	d.InsertRanked(p, "secondary", 12)
	addr := netutil.MustParseAddr("172.20.5.5")
	if _, v, ok := d.Freeze().Lookup(addr); !ok || v != "primary" {
		t.Fatalf("lookup = %q %v, want primary", v, ok)
	}
	d.Remove(p, 64+12)
	if _, v, ok := d.Freeze().Lookup(addr); !ok || v != "secondary" {
		t.Fatalf("after removing primary, lookup = %q %v, want secondary", v, ok)
	}
	d.Remove(p, 12)
	if _, _, ok := d.Freeze().Lookup(addr); ok {
		t.Fatal("lookup matched after both ranks removed")
	}
}

func TestDynamicShadowRestore(t *testing.T) {
	// A /24 shadows part of a /16's expansion span in the same node;
	// removing the /24 must restore the /16 in the shadowed slots.
	d := NewDynamic[string]()
	p16 := netutil.MustParsePrefix("10.1.0.0/16")
	p24 := netutil.MustParsePrefix("10.1.7.0/24")
	d.InsertRanked(p16, "wide", 16)
	d.InsertRanked(p24, "narrow", 24)
	in24 := netutil.MustParseAddr("10.1.7.200")
	in16 := netutil.MustParseAddr("10.1.8.1")
	if gp, _, _ := d.Freeze().Lookup(in24); gp != p24 {
		t.Fatalf("lookup in /24 = %v, want %v", gp, p24)
	}
	d.Remove(p24, 24)
	f := d.Freeze()
	if gp, v, ok := f.Lookup(in24); !ok || gp != p16 || v != "wide" {
		t.Fatalf("after removing /24, lookup = %v %q %v, want %v wide", gp, v, ok, p16)
	}
	if gp, _, _ := f.Lookup(in16); gp != p16 {
		t.Fatalf("untouched /16 slot = %v, want %v", gp, p16)
	}
}

// TestDynamicVsReference drives random insert/remove churn and checks
// every freeze against the brute-force oracle at all boundary probes.
func TestDynamicVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := NewDynamic[int]()
	ref := newRefModel()
	var keys []dynKey // insertion order, may contain dead keys

	for round := 0; round < 40; round++ {
		for op := 0; op < 30; op++ {
			if len(keys) > 0 && rng.Intn(3) == 0 {
				k := keys[rng.Intn(len(keys))]
				gotLive := d.Remove(k.prefix, int(k.rank))
				_, wantLive := ref.entries[k]
				if gotLive != wantLive {
					t.Fatalf("round %d: Remove(%v,%d) = %v, oracle says %v", round, k.prefix, k.rank, gotLive, wantLive)
				}
				ref.remove(k.prefix, int(k.rank))
				continue
			}
			p := randPrefix(rng)
			rank := rng.Intn(128)
			v := rng.Int()
			d.InsertRanked(p, v, rank)
			ref.insert(p, v, rank)
			keys = append(keys, dynKey{prefix: p, rank: int16(rank)})
		}
		if d.Len() != len(ref.entries) {
			t.Fatalf("round %d: Len = %d, oracle has %d", round, d.Len(), len(ref.entries))
		}
		f := d.Freeze()
		for _, addr := range probeSet(ref.entries) {
			gp, gv, gok := f.Lookup(addr)
			wp, wv, wok := ref.lookup(addr)
			if gok != wok || (gok && (gp != wp || gv != wv)) {
				t.Fatalf("round %d: Lookup(%v) = %v %d %v, oracle %v %d %v",
					round, addr, gp, gv, gok, wp, wv, wok)
			}
		}
	}
}

// TestDynamicIncrementalFreezeMatchesScratch checks the core invariant
// behind delta compilation: after arbitrary churn, an incrementally
// frozen table answers identically to a Multibit built from scratch over
// the same live key set.
func TestDynamicIncrementalFreezeMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDynamic[int]()
	live := make(map[dynKey]int)
	var keys []dynKey

	var lastFrozen *Frozen[int]
	for round := 0; round < 25; round++ {
		for op := 0; op < 40; op++ {
			if len(keys) > 0 && rng.Intn(2) == 0 {
				k := keys[rng.Intn(len(keys))]
				d.Remove(k.prefix, int(k.rank))
				delete(live, k)
				continue
			}
			p := randPrefix(rng)
			rank := rng.Intn(100)
			v := rng.Int()
			d.InsertRanked(p, v, rank)
			k := dynKey{prefix: p, rank: int16(rank)}
			live[k] = v
			keys = append(keys, k)
		}
		lastFrozen = d.Freeze()
	}

	scratch := NewMultibit[int]()
	for k, v := range live {
		scratch.InsertRanked(k.prefix, v, int(k.rank))
	}
	sf := scratch.Freeze()

	rng2 := rand.New(rand.NewSource(99))
	probes := probeSet(live)
	for i := 0; i < 5000; i++ {
		probes = append(probes, netutil.Addr(rng2.Uint32()))
	}
	for _, addr := range probes {
		gp, gv, gok := lastFrozen.Lookup(addr)
		wp, wv, wok := sf.Lookup(addr)
		if gok != wok || (gok && (gp != wp || gv != wv)) {
			t.Fatalf("Lookup(%v): incremental %v %d %v, scratch %v %d %v", addr, gp, gv, gok, wp, wv, wok)
		}
	}
}

// TestDynamicOldGenerationsImmutable freezes a generation, keeps
// mutating, and checks the old generation still answers exactly as it
// did at its freeze point — the RCU safety property.
func TestDynamicOldGenerationsImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	d := NewDynamic[int]()
	var keys []dynKey
	for i := 0; i < 300; i++ {
		p := randPrefix(rng)
		rank := rng.Intn(64)
		d.InsertRanked(p, i, rank)
		keys = append(keys, dynKey{prefix: p, rank: int16(rank)})
	}
	gen0 := d.Freeze()

	// Record gen0's answers over a fixed probe set.
	var probes []netutil.Addr
	for i := 0; i < 4000; i++ {
		probes = append(probes, netutil.Addr(rng.Uint32()))
	}
	type ans struct {
		p  netutil.Prefix
		v  int
		ok bool
	}
	want := make([]ans, len(probes))
	for i, a := range probes {
		p, v, ok := gen0.Lookup(a)
		want[i] = ans{p, v, ok}
	}

	// Heavy churn, including removals of gen0 keys and freezes in between.
	for round := 0; round < 10; round++ {
		for op := 0; op < 100; op++ {
			if rng.Intn(2) == 0 && len(keys) > 0 {
				k := keys[rng.Intn(len(keys))]
				d.Remove(k.prefix, int(k.rank))
			} else {
				p := randPrefix(rng)
				rank := rng.Intn(64)
				d.InsertRanked(p, rng.Int(), rank)
				keys = append(keys, dynKey{prefix: p, rank: int16(rank)})
			}
		}
		d.Freeze()
	}

	for i, a := range probes {
		p, v, ok := gen0.Lookup(a)
		if p != want[i].p || v != want[i].v || ok != want[i].ok {
			t.Fatalf("gen0.Lookup(%v) changed after churn: now %v %d %v, was %v %d %v",
				a, p, v, ok, want[i].p, want[i].v, want[i].ok)
		}
	}
}

func TestDynamicDeadEntriesAccounting(t *testing.T) {
	d := NewDynamic[int]()
	p := netutil.MustParsePrefix("192.168.0.0/24")
	d.InsertRanked(p, 1, 24)
	if d.DeadEntries() != 0 {
		t.Fatalf("DeadEntries before any freeze = %d, want 0", d.DeadEntries())
	}
	// Unfrozen entries never hit the arena: replace + remove cost nothing.
	d.InsertRanked(p, 2, 24)
	d.Remove(p, 24)
	if d.DeadEntries() != 0 {
		t.Fatalf("DeadEntries after unfrozen churn = %d, want 0", d.DeadEntries())
	}
	d.InsertRanked(p, 3, 24)
	d.Freeze()
	d.InsertRanked(p, 4, 24) // replaces a frozen row: one dead row
	if d.DeadEntries() != 1 {
		t.Fatalf("DeadEntries after replacing frozen entry = %d, want 1", d.DeadEntries())
	}
	d.Freeze()
	d.Remove(p, 24) // removes a frozen row: another dead row
	if d.DeadEntries() != 2 {
		t.Fatalf("DeadEntries after removing frozen entry = %d, want 2", d.DeadEntries())
	}
}

func TestDynamicRankRange(t *testing.T) {
	d := NewDynamic[int]()
	for _, rank := range []int{-1, 1<<14 + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("InsertRanked(rank=%d) did not panic", rank)
				}
			}()
			d.InsertRanked(netutil.MustParsePrefix("1.0.0.0/8"), 0, rank)
		}()
	}
}

func TestDynamicWalk(t *testing.T) {
	d := NewDynamic[int]()
	want := map[string]int{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		p := randPrefix(rng)
		rank := rng.Intn(32)
		d.InsertRanked(p, i, rank)
		want[fmt.Sprintf("%v#%d", p, rank)] = i
	}
	got := map[string]int{}
	d.Walk(func(p netutil.Prefix, rank int, v int) bool {
		got[fmt.Sprintf("%v#%d", p, rank)] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Walk visited %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Walk[%s] = %d, want %d", k, got[k], v)
		}
	}
}
