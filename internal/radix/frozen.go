package radix

import (
	"sync"

	"github.com/netaware/netcluster/internal/netutil"
)

// Frozen is the read-only, flattened form of a Multibit: the pointer-linked
// stride-8 nodes are compacted into two flat int32 arrays (child index and
// entry index per slot) plus parallel entry tables. A lookup is at most
// four pairs of array loads with no pointer chasing, the node blocks are
// contiguous so the hot top of the table stays in cache, and the structure
// is immutable after Freeze — safe for unlimited concurrent readers with
// zero synchronization. This is the FIB-style "compiled" representation
// the clustering engine uses for million-client logs; keep the Multibit
// (or Tree) form when the table still changes.
type Frozen[V any] struct {
	// children[n*256+b] is the index of node n's child for byte b, or 0 for
	// none (node 0 is the root, which is never anyone's child).
	children []int32
	// slots[n*256+b] indexes the entry tables, or -1 for an empty slot.
	slots    []int32
	prefixes []netutil.Prefix
	ranks    []int16
	values   []V
	size     int
	// packed is the batch kernel's derived slot array — see
	// frozen_batch.go. Built lazily on the first LookupBatch (packOnce
	// publishes it to concurrent callers); nil until then, so sequential
	// lookups and snapshot loads never pay for it.
	packOnce sync.Once
	packed   []int64
}

// Freeze flattens the table. The Multibit remains usable; the Frozen form
// holds no references into it beyond the stored values.
func (m *Multibit[V]) Freeze() *Frozen[V] {
	f := &Frozen[V]{size: m.size}
	entryIdx := make(map[*mbEntry[V]]int32)
	// Breadth-first over the node graph; node i's slot block is appended
	// while processing i, and children discovered there receive indexes
	// greater than i.
	nodes := []*mbNode[V]{&m.root}
	for i := 0; i < len(nodes); i++ {
		n := nodes[i]
		for b := 0; b < 256; b++ {
			ei := int32(-1)
			if e := n.entries[b]; e != nil {
				idx, ok := entryIdx[e]
				if !ok {
					idx = int32(len(f.prefixes))
					entryIdx[e] = idx
					f.prefixes = append(f.prefixes, e.prefix)
					f.ranks = append(f.ranks, e.rank)
					f.values = append(f.values, e.value)
				}
				ei = idx
			}
			f.slots = append(f.slots, ei)
			ci := int32(0)
			if c := n.children[b]; c != nil {
				nodes = append(nodes, c)
				ci = int32(len(nodes) - 1)
			}
			f.children = append(f.children, ci)
		}
	}
	return f
}

// Len returns the number of distinct prefixes in the table.
func (f *Frozen[V]) Len() int { return f.size }

// NumNodes returns the number of flattened stride-8 nodes, a direct proxy
// for the table's memory footprint (each node is 2 KiB of slot arrays).
func (f *Frozen[V]) NumNodes() int { return len(f.slots) / 256 }

// Lookup returns the highest-ranked stored prefix containing addr — the
// longest match under Insert's rank = bits convention.
func (f *Frozen[V]) Lookup(addr netutil.Addr) (netutil.Prefix, V, bool) {
	a := uint32(addr)
	best := int32(-1)
	bestRank := int16(-1)
	node := int32(0)
	for shift := 24; ; shift -= 8 {
		i := int(node)<<8 + int(a>>uint(shift))&0xFF
		if e := f.slots[i]; e >= 0 && f.ranks[e] >= bestRank {
			best, bestRank = e, f.ranks[e]
		}
		node = f.children[i]
		if node == 0 || shift == 0 {
			break
		}
	}
	if best < 0 {
		var zero V
		return netutil.Prefix{}, zero, false
	}
	return f.prefixes[best], f.values[best], true
}

// LookupDepth is Lookup instrumented: it additionally reports how many
// stride-8 levels the walk descended (1–4). The clustering engines
// sample it to populate the lookup-depth histogram without taxing the
// plain Lookup hot path.
func (f *Frozen[V]) LookupDepth(addr netutil.Addr) (netutil.Prefix, V, int, bool) {
	a := uint32(addr)
	best := int32(-1)
	bestRank := int16(-1)
	node := int32(0)
	depth := 0
	for shift := 24; ; shift -= 8 {
		depth++
		i := int(node)<<8 + int(a>>uint(shift))&0xFF
		if e := f.slots[i]; e >= 0 && f.ranks[e] >= bestRank {
			best, bestRank = e, f.ranks[e]
		}
		node = f.children[i]
		if node == 0 || shift == 0 {
			break
		}
	}
	if best < 0 {
		var zero V
		return netutil.Prefix{}, zero, depth, false
	}
	return f.prefixes[best], f.values[best], depth, true
}
