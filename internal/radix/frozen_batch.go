package radix

import (
	"fmt"
	"unsafe"

	"github.com/netaware/netcluster/internal/netutil"
)

// Batch lookup kernel. A single Lookup spends most of its time not on
// memory — the hot top of a compiled table lives in cache — but on
// instruction overhead: per level it loads a slot, tests entry presence,
// loads the entry's rank through a dependent index, compares ranks, and
// branches, with bounds checks on every array access. LookupBatch
// removes that overhead instead of restructuring memory traffic:
//
//   - the "entry present && rank >= best" rule collapses to one integer
//     max over a derived packed array: packed[i] = (rank+1)<<32 | row
//     for an occupied slot, -1 for an empty one. Because biased ranks
//     are nonnegative and the comparison is rank-major, `if s > best`
//     selects exactly the entry the sequential rule selects (equal
//     ranks imply equal prefix lengths imply the same slot, so ties
//     between distinct entries cannot arise on one walk). The dependent
//     ranks[e] load, the presence test, and the two-way update all
//     disappear; the winning row is recovered as int32(best), which is
//     also -1 on a miss;
//   - the four-level walk is unrolled with an early exit on a missing
//     child, so typical probes (depth 1-2 in real BGP tables) retire a
//     fraction of the full walk's instructions;
//   - slot and child loads go through unsafe pointers, eliding bounds
//     checks the construction invariants already guarantee: every child
//     index c validated by Freeze/NewFrozen satisfies c < numNodes, so
//     c<<8|byte < numNodes*256 = len(packed) = len(children).
//
// packed is derived state, built lazily on first use (sync.Once), so
// loading a snapshot pays nothing for it until batches actually run and
// the sequential Lookup path keeps its identical, packed-free walk.

// growRows returns dst resized to n, reusing its backing array when the
// capacity allows — the zero-allocation reuse path.
func growRows(dst []int32, n int) []int32 {
	if cap(dst) < n {
		return make([]int32, n)
	}
	return dst[:n]
}

// buildPacked derives the packed slot array from slots and ranks. The
// +1 bias keeps every packable rank's word nonnegative: InsertRanked
// only admits ranks in [0, 1<<14], and for arrays assembled by
// NewFrozen from external data any negative rank loses every sequential
// comparison against the initial bestRank of -1 exactly as a -1
// (empty) packed word loses every max.
func (f *Frozen[V]) buildPacked() {
	packed := make([]int64, len(f.slots))
	for i, e := range f.slots {
		if e >= 0 && f.ranks[e] >= 0 {
			packed[i] = (int64(f.ranks[e])+1)<<32 | int64(uint32(e))
		} else {
			packed[i] = -1
		}
	}
	f.packed = packed
}

// LookupBatch resolves every address in addrs to its winning entry row
// (-1 for no match), writing into dst (reused when capacity allows) and
// returning it. Row i corresponds to addrs[i]; resolve rows to prefixes
// and values with Entry. Results are identical to per-probe Lookup,
// including the rank tie rule. The first call on a Frozen builds the
// packed slot array; steady-state calls allocate nothing beyond dst
// reuse.
func (f *Frozen[V]) LookupBatch(addrs []netutil.Addr, dst []int32) []int32 {
	n := len(addrs)
	dst = growRows(dst, n)
	if n == 0 {
		return dst
	}
	f.packOnce.Do(f.buildPacked)
	packed, children := f.packed, f.children
	if len(packed) == 0 || len(packed) != len(children) {
		// Unreachable for a Frozen built by Freeze or NewFrozen; guards
		// the unsafe loads below against a zero-value receiver.
		for i := range dst {
			dst[i] = -1
		}
		return dst
	}
	pk := unsafe.Pointer(&packed[0])
	ch := unsafe.Pointer(&children[0])
	for k, addr := range addrs {
		a := uint32(addr)
		i := uintptr(a >> 24)
		best := *(*int64)(unsafe.Add(pk, i*8))
		if c := *(*int32)(unsafe.Add(ch, i*4)); c != 0 {
			i = uintptr(c)<<8 | uintptr(a>>16&0xFF)
			if s := *(*int64)(unsafe.Add(pk, i*8)); s > best {
				best = s
			}
			if c = *(*int32)(unsafe.Add(ch, i*4)); c != 0 {
				i = uintptr(c)<<8 | uintptr(a>>8&0xFF)
				if s := *(*int64)(unsafe.Add(pk, i*8)); s > best {
					best = s
				}
				if c = *(*int32)(unsafe.Add(ch, i*4)); c != 0 {
					i = uintptr(c)<<8 | uintptr(a&0xFF)
					if s := *(*int64)(unsafe.Add(pk, i*8)); s > best {
						best = s
					}
				}
			}
		}
		// best is either -1 (all levels empty) or a packed word whose low
		// half is the row; int32 truncation yields the row or -1.
		dst[k] = int32(best)
	}
	return dst
}

// Entry resolves an entry row returned by LookupBatch to its stored
// prefix and value. Rows are stable for the lifetime of the Frozen.
func (f *Frozen[V]) Entry(row int32) (netutil.Prefix, V) {
	return f.prefixes[row], f.values[row]
}

// Raw exposes the flat backing arrays of f — children and slots
// (256-slot blocks per node), the parallel entry tables, and the live
// prefix count — for zero-copy serialization (see internal/bgp's table
// snapshot codec). The returned slices are the live arrays: callers must
// treat them as read-only.
func (f *Frozen[V]) Raw() (children, slots []int32, prefixes []netutil.Prefix, ranks []int16, values []V, size int) {
	return f.children, f.slots, f.prefixes, f.ranks, f.values, f.size
}

// NewFrozen assembles a Frozen directly from flat arrays — the snapshot
// loader's constructor. It validates the structural invariants every
// walk depends on (block-aligned arrays, child and slot indices in
// range, root present, acyclic child links by construction of the
// forward-only index rule), so a table loaded from a corrupt or
// truncated file fails here instead of panicking in a lookup.
//
// The arrays are retained, not copied: a caller mapping them from a file
// must keep the mapping alive for the lifetime of the Frozen.
func NewFrozen[V any](children, slots []int32, prefixes []netutil.Prefix, ranks []int16, values []V, size int) (*Frozen[V], error) {
	if len(children) != len(slots) {
		return nil, fmt.Errorf("children/slots length mismatch: %d vs %d", len(children), len(slots))
	}
	if len(children) == 0 || len(children)%256 != 0 {
		return nil, fmt.Errorf("node arrays must be a positive multiple of 256 slots, got %d", len(children))
	}
	if len(prefixes) != len(ranks) || len(prefixes) != len(values) {
		return nil, fmt.Errorf("entry tables disagree: %d prefixes, %d ranks, %d values",
			len(prefixes), len(ranks), len(values))
	}
	// size is the distinct-prefix count, carried independently of the
	// entry rows: a fully shadowed prefix occupies no row, so size may
	// legitimately exceed len(prefixes).
	if size < 0 {
		return nil, fmt.Errorf("negative size %d", size)
	}
	numNodes := int32(len(children) / 256)
	nRows := int32(len(prefixes))
	for i, c := range children {
		// Children must point forward (BFS order) — node n's children all
		// have indexes > n — which also guarantees the walk terminates.
		if c != 0 && (c <= int32(i>>8) || c >= numNodes) {
			return nil, fmt.Errorf("slot %d: child index %d out of range (nodes %d)", i, c, numNodes)
		}
	}
	for i, e := range slots {
		if e < -1 || e >= nRows {
			return nil, fmt.Errorf("slot %d: entry row %d out of range (rows %d)", i, e, nRows)
		}
	}
	return &Frozen[V]{
		children: children,
		slots:    slots,
		prefixes: prefixes,
		ranks:    ranks,
		values:   values,
		size:     size,
	}, nil
}
