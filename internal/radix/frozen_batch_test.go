package radix

import (
	"math/rand"
	"testing"

	"github.com/netaware/netcluster/internal/netutil"
)

// batchFixture builds a random ranked table plus a probe set that covers
// every /0–/32 boundary address around the inserted prefixes — the same
// decision-flipping address family the sequential property test uses —
// padded with uniform random interior probes.
func batchFixture(rng *rand.Rand, nPrefixes, nRandom int) (*Frozen[int], []netutil.Addr) {
	mb := NewMultibit[int]()
	inserted := make([]netutil.Prefix, 0, nPrefixes)
	for i := 0; i < nPrefixes; i++ {
		bits := rng.Intn(33)
		addr := netutil.Addr(rng.Uint32()) & netutil.Addr(netutil.MaskOf(bits))
		p := netutil.PrefixFrom(addr, bits)
		rank := bits
		if rng.Intn(2) == 0 {
			rank += 64
		}
		mb.InsertRanked(p, rng.Int(), rank)
		inserted = append(inserted, p)
	}
	var probes []netutil.Addr
	for _, p := range inserted {
		for bits := 0; bits <= 32; bits++ {
			q := netutil.PrefixFrom(p.Addr()&netutil.Addr(netutil.MaskOf(bits)), bits)
			probes = append(probes, q.First(), q.Last(), q.First()-1, q.Last()+1)
		}
	}
	for i := 0; i < nRandom; i++ {
		probes = append(probes, netutil.Addr(rng.Uint32()))
	}
	rng.Shuffle(len(probes), func(i, j int) { probes[i], probes[j] = probes[j], probes[i] })
	return mb.Freeze(), probes
}

// TestLookupBatchMatchesSequential is the batch kernel's equivalence
// property: for random ranked tables, LookupBatch must return for every
// probe exactly the entry row the sequential Lookup resolves to —
// including miss (-1), rank ties, and boundary addresses at every
// prefix length.
func TestLookupBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	var dst []int32
	for trial := 0; trial < 20; trial++ {
		f, probes := batchFixture(rng, 1+rng.Intn(200), 500)
		dst = f.LookupBatch(probes, dst)
		if len(dst) != len(probes) {
			t.Fatalf("trial %d: got %d rows for %d probes", trial, len(dst), len(probes))
		}
		for i, a := range probes {
			wp, wv, wok := f.Lookup(a)
			if row := dst[i]; row < 0 {
				if wok {
					t.Fatalf("trial %d: batch missed %v, sequential matched %v", trial, a, wp)
				}
			} else {
				gp, gv := f.Entry(row)
				if !wok || gp != wp || gv != wv {
					t.Fatalf("trial %d: batch(%v) = %v %d, sequential = %v %d ok=%v",
						trial, a, gp, gv, wp, wv, wok)
				}
			}
		}
	}
}

// TestLookupBatchEdgeShapes covers the shapes the main property test can
// under-sample: empty batches, a single probe, all probes identical, a
// batch with every probe in one first-byte bucket, and a table whose
// only entry is the default route.
func TestLookupBatchEdgeShapes(t *testing.T) {
	mb := NewMultibit[int]()
	mb.InsertRanked(netutil.PrefixFrom(0, 0), 7, 64)
	mb.InsertRanked(netutil.PrefixFrom(netutil.AddrFrom4(10, 0, 0, 0), 8), 8, 64+8)
	mb.InsertRanked(netutil.PrefixFrom(netutil.AddrFrom4(10, 1, 0, 0), 16), 16, 64+16)
	mb.InsertRanked(netutil.PrefixFrom(netutil.AddrFrom4(10, 1, 2, 0), 24), 24, 64+24)
	mb.InsertRanked(netutil.PrefixFrom(netutil.AddrFrom4(10, 1, 2, 3), 32), 32, 64+32)
	f := mb.Freeze()

	check := func(name string, probes []netutil.Addr) {
		t.Helper()
		rows := f.LookupBatch(probes, nil)
		for i, a := range probes {
			wp, _, wok := f.Lookup(a)
			if row := rows[i]; row < 0 {
				if wok {
					t.Fatalf("%s: probe %v: batch miss, sequential %v", name, a, wp)
				}
			} else if gp, _ := f.Entry(row); !wok || gp != wp {
				t.Fatalf("%s: probe %v: batch %v, sequential %v ok=%v", name, a, gp, wp, wok)
			}
		}
	}

	check("empty", nil)
	check("single", []netutil.Addr{netutil.AddrFrom4(10, 1, 2, 3)})
	same := make([]netutil.Addr, 100)
	for i := range same {
		same[i] = netutil.AddrFrom4(10, 1, 2, 3)
	}
	check("identical", same)
	oneBucket := make([]netutil.Addr, 256)
	for i := range oneBucket {
		oneBucket[i] = netutil.AddrFrom4(10, 1, 2, byte(i))
	}
	check("one-bucket", oneBucket)

	// Default-route-only table: every probe matches at level 0 with no
	// descent, exercising the walk's earliest exit exclusively.
	mb2 := NewMultibit[int]()
	mb2.InsertRanked(netutil.PrefixFrom(0, 0), 1, 64)
	f2 := mb2.Freeze()
	rows := f2.LookupBatch(oneBucket, nil)
	for i := range rows {
		if rows[i] < 0 {
			t.Fatalf("default-route table: probe %d missed", i)
		}
	}
}

// TestLookupBatchReusesDst asserts the zero-allocation contract: with a
// big-enough dst, repeated batches neither allocate (the packed array
// is built once, on the first call) nor reallocate the result slice.
func TestLookupBatchReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f, probes := batchFixture(rng, 100, 1000)
	dst := f.LookupBatch(probes, nil)
	allocs := testing.AllocsPerRun(20, func() {
		out := f.LookupBatch(probes, dst)
		if &out[0] != &dst[0] {
			t.Fatal("dst was reallocated despite sufficient capacity")
		}
	})
	if allocs != 0 {
		t.Fatalf("reuse path allocated %.1f times per batch, want 0", allocs)
	}
}

// TestNewFrozenValidates exercises the structural validation that keeps
// a corrupt snapshot from becoming a panicking table.
func TestNewFrozenValidates(t *testing.T) {
	mb := NewMultibit[int]()
	mb.InsertRanked(netutil.PrefixFrom(netutil.AddrFrom4(10, 0, 0, 0), 8), 1, 64+8)
	mb.InsertRanked(netutil.PrefixFrom(netutil.AddrFrom4(10, 1, 0, 0), 16), 2, 64+16)
	f := mb.Freeze()
	children, slots, prefixes, ranks, values, size := f.Raw()

	if g, err := NewFrozen(children, slots, prefixes, ranks, values, size); err != nil {
		t.Fatalf("valid arrays rejected: %v", err)
	} else {
		a := netutil.AddrFrom4(10, 1, 2, 3)
		gp, gv, gok := g.Lookup(a)
		wp, wv, wok := f.Lookup(a)
		if gok != wok || gp != wp || gv != wv {
			t.Fatalf("rebuilt table disagrees: %v %d %v vs %v %d %v", gp, gv, gok, wp, wv, wok)
		}
	}

	corrupt := func(name string, mutate func(c, s []int32) ([]int32, []int32, int)) {
		t.Helper()
		c := append([]int32(nil), children...)
		s := append([]int32(nil), slots...)
		c2, s2, sz := mutate(c, s)
		if _, err := NewFrozen(c2, s2, prefixes, ranks, values, sz); err == nil {
			t.Fatalf("%s: corrupt arrays accepted", name)
		}
	}
	corrupt("child-out-of-range", func(c, s []int32) ([]int32, []int32, int) {
		c[0] = int32(len(c) / 256)
		return c, s, size
	})
	corrupt("child-backward", func(c, s []int32) ([]int32, []int32, int) {
		c[257] = 1 // node 1 pointing at itself: cycle
		return c, s, size
	})
	corrupt("slot-out-of-range", func(c, s []int32) ([]int32, []int32, int) {
		s[0] = int32(len(prefixes))
		return c, s, size
	})
	corrupt("misaligned", func(c, s []int32) ([]int32, []int32, int) {
		return c[:255], s[:255], size
	})
	corrupt("negative-size", func(c, s []int32) ([]int32, []int32, int) {
		return c, s, -1
	})
}
