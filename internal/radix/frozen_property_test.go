package radix

import (
	"math/rand"
	"testing"

	"github.com/netaware/netcluster/internal/netutil"
)

// TestFrozenMatchesTreeProperty is the property-based check that the
// flattened stride-8 table implements exactly the longest-prefix-match
// the bitwise Tree does. For each random prefix set it probes, for every
// inserted prefix, the first and last address of its /0–/32 enclosing
// prefixes at every length (plus the one-off neighbors) — the complete
// set of addresses where a match decision can flip.
func TestFrozenMatchesTreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		mb := NewMultibit[int]()
		tr := New[int]()
		inserted := make([]netutil.Prefix, 0, n)
		for i := 0; i < n; i++ {
			bits := rng.Intn(33) // 0..32, default route included
			addr := netutil.Addr(rng.Uint32()) & netutil.Addr(netutil.MaskOf(bits))
			p := netutil.PrefixFrom(addr, bits)
			v := rng.Int()
			mb.Insert(p, v)
			tr.Insert(p, v)
			inserted = append(inserted, p)
		}
		f := mb.Freeze()

		if f.Len() != tr.Len() {
			t.Fatalf("trial %d: Frozen.Len = %d, Tree.Len = %d", trial, f.Len(), tr.Len())
		}

		seen := make(map[netutil.Addr]struct{})
		probe := func(addr netutil.Addr) {
			if _, dup := seen[addr]; dup {
				return
			}
			seen[addr] = struct{}{}
			gp, gv, gok := f.Lookup(addr)
			wp, wv, wok := tr.Lookup(addr)
			if gok != wok || (gok && (gp != wp || gv != wv)) {
				t.Fatalf("trial %d: Lookup(%v): frozen %v %d %v, tree %v %d %v",
					trial, addr, gp, gv, gok, wp, wv, wok)
			}
		}
		for _, p := range inserted {
			// Boundary addresses of every enclosing prefix length: the /b
			// block around p's base address, for b = 0..32.
			for bits := 0; bits <= 32; bits++ {
				q := netutil.PrefixFrom(p.Addr()&netutil.Addr(netutil.MaskOf(bits)), bits)
				probe(q.First())
				probe(q.Last())
				probe(q.First() - 1)
				probe(q.Last() + 1)
			}
		}
		// A sprinkling of uniform random addresses for the interior.
		for i := 0; i < 500; i++ {
			probe(netutil.Addr(rng.Uint32()))
		}
	}
}

// TestFrozenMatchesTreeRanked repeats the property with explicit ranks
// decoupled from prefix length, the regime bgp.Compiled uses to fold two
// match classes into one table. The oracle is a linear scan under the
// same (rank, bits, insertion-last) precedence InsertRanked documents.
func TestFrozenMatchesTreeRanked(t *testing.T) {
	rng := rand.New(rand.NewSource(7391))
	for trial := 0; trial < 10; trial++ {
		type stored struct {
			p    netutil.Prefix
			v    int
			rank int
		}
		mb := NewMultibit[int]()
		byPrefix := make(map[netutil.Prefix]stored)
		n := 1 + rng.Intn(150)
		for i := 0; i < n; i++ {
			bits := 1 + rng.Intn(32)
			addr := netutil.Addr(rng.Uint32()) & netutil.Addr(netutil.MaskOf(bits))
			p := netutil.PrefixFrom(addr, bits)
			if _, dup := byPrefix[p]; dup {
				continue // re-ranking a prefix is outside InsertRanked's contract
			}
			// Rank folds a class bias over length, as the bgp compiler does.
			rank := bits
			if rng.Intn(2) == 0 {
				rank += 64
			}
			v := rng.Int()
			mb.InsertRanked(p, v, rank)
			byPrefix[p] = stored{p, v, rank}
		}
		f := mb.Freeze()

		lookupRef := func(addr netutil.Addr) (netutil.Prefix, int, bool) {
			var best stored
			found := false
			for _, s := range byPrefix {
				if !s.p.Contains(addr) {
					continue
				}
				if !found || s.rank > best.rank || (s.rank == best.rank && s.p.Bits() > best.p.Bits()) {
					best, found = s, true
				}
			}
			return best.p, best.v, found
		}

		for _, s := range byPrefix {
			for _, addr := range []netutil.Addr{s.p.First(), s.p.Last(), s.p.First() - 1, s.p.Last() + 1} {
				gp, gv, gok := f.Lookup(addr)
				wp, wv, wok := lookupRef(addr)
				if gok != wok || (gok && (gp != wp || gv != wv)) {
					t.Fatalf("trial %d: Lookup(%v): frozen %v %d %v, oracle %v %d %v",
						trial, addr, gp, gv, gok, wp, wv, wok)
				}
			}
		}
	}
}
