package radix

import (
	"math/rand"
	"testing"

	"github.com/netaware/netcluster/internal/netutil"
)

func TestFrozenMatchesMultibit(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	multi := NewMultibit[int]()
	for i := 0; i < 4000; i++ {
		p := netutil.PrefixFrom(netutil.Addr(rng.Uint32()), rng.Intn(33))
		multi.Insert(p, i)
	}
	f := multi.Freeze()
	if f.Len() != multi.Len() {
		t.Fatalf("sizes differ: frozen %d vs multibit %d", f.Len(), multi.Len())
	}
	for i := 0; i < 20000; i++ {
		a := netutil.Addr(rng.Uint32())
		mp, mv, mok := multi.Lookup(a)
		fp, fv, fok := f.Lookup(a)
		if mok != fok || mp != fp || mv != fv {
			t.Fatalf("Lookup(%v): multibit (%v,%d,%v) vs frozen (%v,%d,%v)",
				a, mp, mv, mok, fp, fv, fok)
		}
	}
}

func TestFrozenRankedPrecedence(t *testing.T) {
	// Simulate the bgp.Compiled use: a "primary" class biased by 64 must
	// beat a longer "secondary" prefix, and within a class longer wins.
	m := NewMultibit[string]()
	m.InsertRanked(pfx("10.0.0.0/8"), "primary-8", 64+8)
	m.InsertRanked(pfx("10.1.0.0/16"), "secondary-16", 16)
	m.InsertRanked(pfx("10.1.2.0/24"), "primary-24", 64+24)
	m.InsertRanked(pfx("99.0.0.0/8"), "secondary-8", 8)
	cases := []struct{ ip, want string }{
		{"10.1.3.4", "primary-8"},  // class bias beats the longer /16
		{"10.1.2.9", "primary-24"}, // longer primary beats shorter primary
		{"10.9.9.9", "primary-8"},
		{"99.1.2.3", "secondary-8"}, // secondary only when no primary covers
	}
	for _, c := range cases {
		for name, look := range map[string]func(netutil.Addr) (netutil.Prefix, string, bool){
			"multibit": m.Lookup,
			"frozen":   m.Freeze().Lookup,
		} {
			_, v, ok := look(addr(c.ip))
			if !ok || v != c.want {
				t.Errorf("%s Lookup(%s) = %q ok=%v, want %q", name, c.ip, v, ok, c.want)
			}
		}
	}
}

func TestFrozenRankedSameSlotKeepsHigherRank(t *testing.T) {
	// The same prefix in both classes: the later, lower-ranked insert must
	// not displace the higher-ranked entry already in the slot.
	m := NewMultibit[string]()
	m.InsertRanked(pfx("10.0.0.0/8"), "primary", 64+8)
	m.InsertRanked(pfx("10.0.0.0/8"), "secondary", 8)
	if _, v, ok := m.Freeze().Lookup(addr("10.1.2.3")); !ok || v != "primary" {
		t.Fatalf("Lookup = %q ok=%v, want primary", v, ok)
	}
	// Reverse order: the higher rank arriving second replaces.
	m2 := NewMultibit[string]()
	m2.InsertRanked(pfx("10.0.0.0/8"), "secondary", 8)
	m2.InsertRanked(pfx("10.0.0.0/8"), "primary", 64+8)
	if _, v, ok := m2.Freeze().Lookup(addr("10.1.2.3")); !ok || v != "primary" {
		t.Fatalf("reversed Lookup = %q ok=%v, want primary", v, ok)
	}
}

func TestFrozenEmpty(t *testing.T) {
	f := NewMultibit[int]().Freeze()
	if _, _, ok := f.Lookup(addr("1.2.3.4")); ok {
		t.Fatal("empty frozen table matched")
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1 (root only)", f.NumNodes())
	}
}

func TestFrozenConcurrentReaders(t *testing.T) {
	// Run under -race in make check: unlimited readers, no locks.
	rng := rand.New(rand.NewSource(5))
	m := NewMultibit[int]()
	for i := 0; i < 500; i++ {
		m.Insert(netutil.PrefixFrom(netutil.Addr(rng.Uint32()), 8+rng.Intn(25)), i)
	}
	f := m.Freeze()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				a := netutil.Addr(r.Uint32())
				fp, fv, fok := f.Lookup(a)
				mp, mv, mok := m.Lookup(a)
				if fok != mok || fp != mp || fv != mv {
					t.Errorf("concurrent Lookup(%v) diverged", a)
					return
				}
			}
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
