package radix

import (
	"github.com/netaware/netcluster/internal/netutil"
)

// Multibit is a stride-8 longest-prefix-match table built with controlled
// prefix expansion: every prefix is expanded to the byte boundary above
// it, so a lookup is at most four array indexing steps with no bit
// twiddling. This is the classic trade hardware and software routers make
// against the path-compressed binary trie (Tree): considerably more
// memory, considerably faster lookups on wide tables. The clustering
// pipeline can use either engine; BenchmarkAblationTrieDesign quantifies
// the trade on this workload.
//
// Multibit is build-oriented: Insert and Lookup only. Routers rebuild
// expanded FIBs on change rather than editing them in place, and the
// clustering pipeline's merged tables are likewise write-once; use Tree
// when deletion is needed.
type Multibit[V any] struct {
	root mbNode[V]
	size int
	keys map[netutil.Prefix]struct{}
}

type mbEntry[V any] struct {
	prefix netutil.Prefix
	value  V
	rank   int16
}

type mbNode[V any] struct {
	children [256]*mbNode[V]
	// entries[b] is the longest prefix terminating within this node's
	// byte whose expansion covers slot b.
	entries [256]*mbEntry[V]
}

// NewMultibit returns an empty table.
func NewMultibit[V any]() *Multibit[V] {
	return &Multibit[V]{keys: make(map[netutil.Prefix]struct{})}
}

// Len returns the number of distinct prefixes inserted.
func (m *Multibit[V]) Len() int { return m.size }

// Insert adds or replaces the value for prefix p. It reports whether the
// prefix was newly inserted.
func (m *Multibit[V]) Insert(p netutil.Prefix, v V) bool {
	return m.InsertRanked(p, v, p.Bits())
}

// InsertRanked is Insert with an explicit slot precedence: where expansions
// of two prefixes cover the same slot, the higher rank wins, ties by
// later insertion. Plain Insert uses rank = p.Bits(), which yields ordinary
// longest-prefix-match semantics; a caller that must fold several match
// classes into one table (see bgp.Compiled) encodes class precedence into
// the high bits of the rank so that a single walk resolves both the class
// and the length. rank must be in [0, 1<<14].
func (m *Multibit[V]) InsertRanked(p netutil.Prefix, v V, rank int) bool {
	if rank < 0 || rank > 1<<14 {
		panic("radix: InsertRanked rank out of range")
	}
	_, existed := m.keys[p]
	if !existed {
		m.keys[p] = struct{}{}
		m.size++
	}
	e := &mbEntry[V]{prefix: p, value: v, rank: int16(rank)}
	octets := p.Addr().Octets()
	bits := p.Bits()

	n := &m.root
	// Walk full bytes above the terminating level.
	fullBytes := bits / 8
	if bits%8 == 0 && bits > 0 {
		fullBytes-- // the final full byte is the terminating level
	}
	for i := 0; i < fullBytes; i++ {
		b := octets[i]
		if n.children[b] == nil {
			n.children[b] = &mbNode[V]{}
		}
		n = n.children[b]
	}
	// Expand the remaining bits within the terminating byte.
	rem := bits - fullBytes*8 // 0..8 significant bits in this byte
	if bits == 0 {
		rem = 0
	}
	base := 0
	if rem > 0 {
		base = int(octets[fullBytes]) & (0xFF << (8 - rem))
	}
	span := 1 << (8 - rem)
	for s := 0; s < span; s++ {
		slot := base + s
		cur := n.entries[slot]
		// Higher ranks win the slot; an equal rank within one node slot can
		// only be the same prefix again (the path plus the slot determine
		// every prefix bit), so <= implements replacement.
		if cur == nil || cur.rank <= e.rank {
			n.entries[slot] = e
		}
	}
	return !existed
}

// Lookup returns the highest-ranked stored prefix containing addr. With
// Insert's rank = bits convention that is the longest match.
func (m *Multibit[V]) Lookup(addr netutil.Addr) (netutil.Prefix, V, bool) {
	octets := addr.Octets()
	var best *mbEntry[V]
	n := &m.root
	for level := 0; level < 4; level++ {
		b := octets[level]
		if e := n.entries[b]; e != nil && (best == nil || best.rank <= e.rank) {
			best = e
		}
		next := n.children[b]
		if next == nil {
			break
		}
		n = next
	}
	if best == nil {
		var zero V
		return netutil.Prefix{}, zero, false
	}
	return best.prefix, best.value, true
}
