package radix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/netaware/netcluster/internal/netutil"
)

func TestMultibitPaperExample(t *testing.T) {
	m := NewMultibit[string]()
	m.Insert(pfx("12.65.128.0/19"), "att")
	m.Insert(pfx("24.48.2.0/23"), "cable")
	cases := []struct{ ip, want string }{
		{"12.65.147.94", "12.65.128.0/19"},
		{"12.65.144.247", "12.65.128.0/19"},
		{"24.48.3.87", "24.48.2.0/23"},
		{"24.48.2.166", "24.48.2.0/23"},
	}
	for _, c := range cases {
		p, _, ok := m.Lookup(addr(c.ip))
		if !ok || p.String() != c.want {
			t.Errorf("Lookup(%s) = %v ok=%v, want %s", c.ip, p, ok, c.want)
		}
	}
	if _, _, ok := m.Lookup(addr("99.99.99.99")); ok {
		t.Error("non-covered address matched")
	}
}

func TestMultibitLongestWins(t *testing.T) {
	m := NewMultibit[int]()
	m.Insert(pfx("0.0.0.0/0"), 0)
	m.Insert(pfx("10.0.0.0/8"), 8)
	m.Insert(pfx("10.1.0.0/16"), 16)
	m.Insert(pfx("10.1.2.0/24"), 24)
	m.Insert(pfx("10.1.2.128/25"), 25)
	m.Insert(pfx("10.1.2.240/28"), 28)
	m.Insert(pfx("10.1.2.250/32"), 32)
	cases := []struct {
		ip   string
		want int
	}{
		{"99.0.0.1", 0},
		{"10.2.0.1", 8},
		{"10.1.9.1", 16},
		{"10.1.2.5", 24},
		{"10.1.2.129", 25},
		{"10.1.2.241", 28},
		{"10.1.2.250", 32},
	}
	for _, c := range cases {
		_, v, ok := m.Lookup(addr(c.ip))
		if !ok || v != c.want {
			t.Errorf("Lookup(%s) = %d ok=%v, want %d", c.ip, v, ok, c.want)
		}
	}
	if m.Len() != 7 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMultibitReplace(t *testing.T) {
	m := NewMultibit[int]()
	if !m.Insert(pfx("10.0.0.0/8"), 1) {
		t.Fatal("first insert must be new")
	}
	if m.Insert(pfx("10.0.0.0/8"), 2) {
		t.Fatal("second insert must replace")
	}
	if _, v, _ := m.Lookup(addr("10.1.2.3")); v != 2 {
		t.Fatalf("value = %d", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMultibitInsertionOrderIrrelevant(t *testing.T) {
	// Shorter-then-longer and longer-then-shorter must agree.
	a := NewMultibit[int]()
	a.Insert(pfx("10.0.0.0/8"), 8)
	a.Insert(pfx("10.1.0.0/16"), 16)
	b := NewMultibit[int]()
	b.Insert(pfx("10.1.0.0/16"), 16)
	b.Insert(pfx("10.0.0.0/8"), 8)
	for _, ip := range []string{"10.1.2.3", "10.2.2.3"} {
		_, va, _ := a.Lookup(addr(ip))
		_, vb, _ := b.Lookup(addr(ip))
		if va != vb {
			t.Fatalf("order-dependent result for %s: %d vs %d", ip, va, vb)
		}
	}
}

// TestMultibitMatchesPatricia cross-checks the two engines over random
// tables: identical results for every probe.
func TestMultibitMatchesPatricia(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tree := New[int]()
	multi := NewMultibit[int]()
	for i := 0; i < 4000; i++ {
		p := netutil.PrefixFrom(netutil.Addr(rng.Uint32()), rng.Intn(33))
		tree.Insert(p, i)
		multi.Insert(p, i)
	}
	if tree.Len() != multi.Len() {
		t.Fatalf("sizes differ: %d vs %d", tree.Len(), multi.Len())
	}
	for i := 0; i < 20000; i++ {
		a := netutil.Addr(rng.Uint32())
		tp, tv, tok := tree.Lookup(a)
		mp, mv, mok := multi.Lookup(a)
		if tok != mok || tp != mp || tv != mv {
			t.Fatalf("Lookup(%v): patricia (%v,%d,%v) vs multibit (%v,%d,%v)",
				a, tp, tv, tok, mp, mv, mok)
		}
	}
}

func TestMultibitProperty(t *testing.T) {
	f := func(seeds []uint32, probe uint32) bool {
		tree := New[struct{}]()
		multi := NewMultibit[struct{}]()
		for i, s := range seeds {
			p := netutil.PrefixFrom(netutil.Addr(s), (i*7)%33)
			tree.Insert(p, struct{}{})
			multi.Insert(p, struct{}{})
		}
		a := netutil.Addr(probe)
		tp, _, tok := tree.Lookup(a)
		mp, _, mok := multi.Lookup(a)
		return tok == mok && tp == mp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestMultibitEmpty(t *testing.T) {
	m := NewMultibit[int]()
	if _, _, ok := m.Lookup(addr("1.2.3.4")); ok {
		t.Fatal("empty table matched")
	}
	if m.Len() != 0 {
		t.Fatal("empty table has size")
	}
}
