// Package radix implements a path-compressed binary trie (Patricia trie)
// over IPv4 prefixes, the longest-prefix-match engine at the heart of the
// clustering pipeline. It is the same structure IP routers use for
// forwarding lookups, which is exactly the semantics the paper requires:
// "perform the longest prefix matching (similar to what IP routers do) on
// each client IP address using the constructed prefix/netmask table".
//
// The trie is generic in its payload so the same structure serves the
// merged prefix/netmask table (payload: entry provenance), the clustering
// index (payload: cluster accumulator), and the ground-truth network map
// (payload: network metadata).
package radix

import (
	"github.com/netaware/netcluster/internal/netutil"
)

// node is a path-compressed trie node. Every node corresponds to a prefix;
// internal nodes created purely for branching carry hasValue == false.
type node[V any] struct {
	prefix   netutil.Prefix
	left     *node[V] // next bit 0
	right    *node[V] // next bit 1
	value    V
	hasValue bool
}

// Tree is a longest-prefix-match table mapping prefixes to values of type V.
// The zero value is not usable; call New. Tree is not safe for concurrent
// mutation; concurrent lookups without writers are safe.
type Tree[V any] struct {
	root *node[V]
	size int
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	// The root always exists and represents 0.0.0.0/0 with no value, so
	// insertion logic never special-cases an empty tree.
	return &Tree[V]{root: &node[V]{prefix: netutil.PrefixFrom(0, 0)}}
}

// Len returns the number of prefixes with values in the tree.
func (t *Tree[V]) Len() int { return t.size }

// bitAt returns bit i (0 = most significant) of a.
func bitAt(a netutil.Addr, i int) int {
	return int(a>>(31-uint(i))) & 1
}

// commonPrefixLen returns the length of the longest common prefix of a and
// b, capped at max.
func commonPrefixLen(a, b netutil.Addr, max int) int {
	x := uint32(a ^ b)
	n := 0
	for n < max && x&0x8000_0000 == 0 {
		n++
		x <<= 1
	}
	return n
}

// Insert adds or replaces the value for prefix p. It reports whether the
// prefix was newly inserted (true) or replaced an existing value (false).
func (t *Tree[V]) Insert(p netutil.Prefix, v V) bool {
	n := t.root
	for {
		if n.prefix == p {
			added := !n.hasValue
			n.value, n.hasValue = v, true
			if added {
				t.size++
			}
			return added
		}
		// Invariant: n.prefix contains p strictly (n is shorter).
		bit := bitAt(p.Addr(), n.prefix.Bits())
		child := n.left
		if bit == 1 {
			child = n.right
		}
		if child == nil {
			t.setChild(n, bit, &node[V]{prefix: p, value: v, hasValue: true})
			t.size++
			return true
		}
		if child.prefix.ContainsPrefix(p) {
			n = child
			continue
		}
		if p.ContainsPrefix(child.prefix) {
			// p sits between n and child: splice a new node in.
			nn := &node[V]{prefix: p, value: v, hasValue: true}
			t.setChild(nn, bitAt(child.prefix.Addr(), p.Bits()), child)
			t.setChild(n, bit, nn)
			t.size++
			return true
		}
		// p and child diverge below n: create a branching node at their
		// longest common prefix.
		limit := child.prefix.Bits()
		if p.Bits() < limit {
			limit = p.Bits()
		}
		cl := commonPrefixLen(p.Addr(), child.prefix.Addr(), limit)
		branch := &node[V]{prefix: netutil.PrefixFrom(p.Addr(), cl)}
		t.setChild(branch, bitAt(p.Addr(), cl), &node[V]{prefix: p, value: v, hasValue: true})
		t.setChild(branch, bitAt(child.prefix.Addr(), cl), child)
		t.setChild(n, bit, branch)
		t.size++
		return true
	}
}

func (t *Tree[V]) setChild(n *node[V], bit int, c *node[V]) {
	if bit == 0 {
		n.left = c
	} else {
		n.right = c
	}
}

// Lookup performs a longest-prefix match for addr, returning the most
// specific stored prefix containing addr, its value, and whether any
// stored prefix matched.
func (t *Tree[V]) Lookup(addr netutil.Addr) (netutil.Prefix, V, bool) {
	var (
		bestP netutil.Prefix
		bestV V
		found bool
		n     = t.root
	)
	for n != nil && n.prefix.Contains(addr) {
		if n.hasValue {
			bestP, bestV, found = n.prefix, n.value, true
		}
		if n.prefix.Bits() == 32 {
			break
		}
		if bitAt(addr, n.prefix.Bits()) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	return bestP, bestV, found
}

// Get returns the value stored for exactly p.
func (t *Tree[V]) Get(p netutil.Prefix) (V, bool) {
	n := t.root
	for n != nil && n.prefix.ContainsPrefix(p) {
		if n.prefix == p {
			if n.hasValue {
				return n.value, true
			}
			break
		}
		if bitAt(p.Addr(), n.prefix.Bits()) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	var zero V
	return zero, false
}

// Delete removes the value for exactly p, reporting whether it was present.
// Structural nodes left without values or branching purpose are pruned so
// repeated insert/delete cycles do not leak memory.
func (t *Tree[V]) Delete(p netutil.Prefix) bool {
	var parent *node[V]
	n := t.root
	for n != nil && n.prefix.ContainsPrefix(p) {
		if n.prefix == p {
			if !n.hasValue {
				return false
			}
			var zero V
			n.value, n.hasValue = zero, false
			t.size--
			t.prune(parent, n)
			return true
		}
		parent = n
		if bitAt(p.Addr(), n.prefix.Bits()) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	return false
}

// prune removes n if it is now a valueless leaf, or splices it out if it is
// a valueless one-child branch. parent may be nil only when n is the root,
// which is never pruned.
func (t *Tree[V]) prune(parent, n *node[V]) {
	if parent == nil || n.hasValue {
		return
	}
	switch {
	case n.left == nil && n.right == nil:
		if parent.left == n {
			parent.left = nil
		} else {
			parent.right = nil
		}
		// The parent may itself have become a splice-able branch; one
		// level of cleanup is enough to keep the structure tight because
		// parents above still branch or hold values by construction.
		if parent != t.root && !parent.hasValue {
			t.spliceSingleChild(parent)
		}
	case n.left == nil:
		t.replaceChild(parent, n, n.right)
	case n.right == nil:
		t.replaceChild(parent, n, n.left)
	}
}

func (t *Tree[V]) spliceSingleChild(n *node[V]) {
	var only *node[V]
	switch {
	case n.left != nil && n.right == nil:
		only = n.left
	case n.right != nil && n.left == nil:
		only = n.right
	default:
		return
	}
	if p := t.findParent(n); p != nil {
		t.replaceChild(p, n, only)
	}
}

func (t *Tree[V]) findParent(target *node[V]) *node[V] {
	n := t.root
	for n != nil {
		if n.left == target || n.right == target {
			return n
		}
		if !n.prefix.ContainsPrefix(target.prefix) {
			return nil
		}
		if bitAt(target.prefix.Addr(), n.prefix.Bits()) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	return nil
}

func (t *Tree[V]) replaceChild(parent, old, new_ *node[V]) {
	if parent.left == old {
		parent.left = new_
	} else if parent.right == old {
		parent.right = new_
	}
}

// Walk visits every stored (prefix, value) pair in ascending prefix order
// (base address, then length). Returning false from fn stops the walk.
func (t *Tree[V]) Walk(fn func(p netutil.Prefix, v V) bool) {
	t.walk(t.root, fn)
}

func (t *Tree[V]) walk(n *node[V], fn func(netutil.Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.hasValue && !fn(n.prefix, n.value) {
		return false
	}
	return t.walk(n.left, fn) && t.walk(n.right, fn)
}

// Prefixes returns all stored prefixes in walk order.
func (t *Tree[V]) Prefixes() []netutil.Prefix {
	out := make([]netutil.Prefix, 0, t.size)
	t.Walk(func(p netutil.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	return out
}

// Covering returns the stored prefixes that contain addr, least specific
// first — the full match chain a router would consider before choosing the
// longest. Useful for diagnosing aggregation-induced mis-clustering.
func (t *Tree[V]) Covering(addr netutil.Addr) []netutil.Prefix {
	var out []netutil.Prefix
	n := t.root
	for n != nil && n.prefix.Contains(addr) {
		if n.hasValue {
			out = append(out, n.prefix)
		}
		if n.prefix.Bits() == 32 {
			break
		}
		if bitAt(addr, n.prefix.Bits()) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	return out
}
