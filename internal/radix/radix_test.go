package radix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/netaware/netcluster/internal/netutil"
)

func pfx(s string) netutil.Prefix { return netutil.MustParsePrefix(s) }
func addr(s string) netutil.Addr  { return netutil.MustParseAddr(s) }

func TestEmptyTree(t *testing.T) {
	tr := New[int]()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, _, ok := tr.Lookup(addr("1.2.3.4")); ok {
		t.Fatal("lookup in empty tree must miss")
	}
	if _, ok := tr.Get(pfx("10.0.0.0/8")); ok {
		t.Fatal("get in empty tree must miss")
	}
	if tr.Delete(pfx("10.0.0.0/8")) {
		t.Fatal("delete in empty tree must report false")
	}
}

func TestInsertLookupPaperExample(t *testing.T) {
	// The exact example from Section 3.2.1 of the paper.
	tr := New[string]()
	tr.Insert(pfx("12.65.128.0/19"), "att")
	tr.Insert(pfx("24.48.2.0/23"), "cable")
	cases := []struct {
		ip   string
		want string
	}{
		{"12.65.147.94", "12.65.128.0/19"},
		{"12.65.147.149", "12.65.128.0/19"},
		{"12.65.146.207", "12.65.128.0/19"},
		{"12.65.144.247", "12.65.128.0/19"},
		{"24.48.3.87", "24.48.2.0/23"},
		{"24.48.2.166", "24.48.2.0/23"},
	}
	for _, c := range cases {
		p, _, ok := tr.Lookup(addr(c.ip))
		if !ok || p.String() != c.want {
			t.Errorf("Lookup(%s) = %v ok=%v, want %s", c.ip, p, ok, c.want)
		}
	}
	if _, _, ok := tr.Lookup(addr("99.99.99.99")); ok {
		t.Error("address outside all prefixes must not match")
	}
}

func TestLongestMatchWins(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("10.0.0.0/8"), 8)
	tr.Insert(pfx("10.1.0.0/16"), 16)
	tr.Insert(pfx("10.1.2.0/24"), 24)
	tr.Insert(pfx("10.1.2.128/25"), 25)
	cases := []struct {
		ip   string
		want int
	}{
		{"10.2.0.1", 8},
		{"10.1.9.1", 16},
		{"10.1.2.5", 24},
		{"10.1.2.200", 25},
	}
	for _, c := range cases {
		_, v, ok := tr.Lookup(addr(c.ip))
		if !ok || v != c.want {
			t.Errorf("Lookup(%s) = %d ok=%v, want %d", c.ip, v, ok, c.want)
		}
	}
}

func TestDefaultRoute(t *testing.T) {
	tr := New[string]()
	tr.Insert(pfx("0.0.0.0/0"), "default")
	tr.Insert(pfx("10.0.0.0/8"), "ten")
	if _, v, ok := tr.Lookup(addr("99.1.2.3")); !ok || v != "default" {
		t.Errorf("default route lookup = %q ok=%v", v, ok)
	}
	if _, v, _ := tr.Lookup(addr("10.1.2.3")); v != "ten" {
		t.Errorf("specific beats default: got %q", v)
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New[int]()
	if !tr.Insert(pfx("10.0.0.0/8"), 1) {
		t.Fatal("first insert must report new")
	}
	if tr.Insert(pfx("10.0.0.0/8"), 2) {
		t.Fatal("second insert must report replace")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, ok := tr.Get(pfx("10.0.0.0/8")); !ok || v != 2 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
}

func TestHostRoutes(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("1.2.3.4/32"), 1)
	tr.Insert(pfx("1.2.3.0/24"), 2)
	if _, v, _ := tr.Lookup(addr("1.2.3.4")); v != 1 {
		t.Errorf("host route must win: got %d", v)
	}
	if _, v, _ := tr.Lookup(addr("1.2.3.5")); v != 2 {
		t.Errorf("neighbour must hit /24: got %d", v)
	}
}

func TestDelete(t *testing.T) {
	tr := New[int]()
	ps := []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "11.0.0.0/8", "10.128.0.0/9"}
	for i, s := range ps {
		tr.Insert(pfx(s), i)
	}
	if !tr.Delete(pfx("10.1.0.0/16")) {
		t.Fatal("delete existing must report true")
	}
	if tr.Delete(pfx("10.1.0.0/16")) {
		t.Fatal("double delete must report false")
	}
	if tr.Len() != len(ps)-1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, v, _ := tr.Lookup(addr("10.1.9.9")); v != 0 {
		t.Errorf("after deleting /16, lookup must fall back to /8, got %d", v)
	}
	if _, v, _ := tr.Lookup(addr("10.1.2.3")); v != 2 {
		t.Errorf("deleting /16 must not disturb /24 below it, got %d", v)
	}
}

func TestWalkOrderAndCount(t *testing.T) {
	tr := New[int]()
	ins := []string{"192.168.0.0/16", "10.0.0.0/8", "10.1.0.0/16", "172.16.0.0/12", "10.1.2.0/24"}
	for i, s := range ins {
		tr.Insert(pfx(s), i)
	}
	var got []netutil.Prefix
	tr.Walk(func(p netutil.Prefix, _ int) bool {
		got = append(got, p)
		return true
	})
	if len(got) != len(ins) {
		t.Fatalf("walk visited %d, want %d", len(got), len(ins))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return netutil.ComparePrefix(got[i], got[j]) < 0 }) {
		t.Errorf("walk order not sorted: %v", got)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 10; i++ {
		tr.Insert(netutil.PrefixFrom(netutil.AddrFrom4(byte(i+1), 0, 0, 0), 8), i)
	}
	n := 0
	tr.Walk(func(netutil.Prefix, int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("walk visited %d after early stop, want 3", n)
	}
}

func TestCovering(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("0.0.0.0/0"), 0)
	tr.Insert(pfx("10.0.0.0/8"), 1)
	tr.Insert(pfx("10.1.0.0/16"), 2)
	tr.Insert(pfx("10.1.2.0/24"), 3)
	cov := tr.Covering(addr("10.1.2.3"))
	want := []string{"0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"}
	if len(cov) != len(want) {
		t.Fatalf("Covering = %v", cov)
	}
	for i := range cov {
		if cov[i].String() != want[i] {
			t.Errorf("Covering[%d] = %v, want %s", i, cov[i], want[i])
		}
	}
}

// TestAgainstLinearScan cross-checks trie lookups against a brute-force
// linear longest-match over a random prefix population.
func TestAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New[int]()
	ref := map[netutil.Prefix]int{}
	for i := 0; i < 3000; i++ {
		bits := 8 + rng.Intn(25) // /8../32
		p := netutil.PrefixFrom(netutil.Addr(rng.Uint32()), bits)
		tr.Insert(p, i)
		ref[p] = i
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref has %d", tr.Len(), len(ref))
	}
	linear := func(a netutil.Addr) (netutil.Prefix, int, bool) {
		best, bv, found := netutil.Prefix{}, 0, false
		for p, v := range ref {
			if p.Contains(a) && (!found || p.Bits() > best.Bits()) {
				best, bv, found = p, v, true
			}
		}
		return best, bv, found
	}
	for i := 0; i < 5000; i++ {
		a := netutil.Addr(rng.Uint32())
		if i%3 == 0 { // bias toward hits: probe near a stored prefix
			for p := range ref {
				a = p.Addr() | netutil.Addr(rng.Uint32())&^netutil.Addr(netutil.MaskOf(p.Bits()))
				break
			}
		}
		wp, wv, wok := linear(a)
		gp, gv, gok := tr.Lookup(a)
		if wok != gok || wp != gp || wv != gv {
			t.Fatalf("Lookup(%v): trie = (%v,%d,%v), linear = (%v,%d,%v)", a, gp, gv, gok, wp, wv, wok)
		}
	}
}

// TestRandomInsertDelete exercises delete-heavy churn and verifies the trie
// stays consistent with a map-based reference model.
func TestRandomInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New[int]()
	ref := map[netutil.Prefix]int{}
	pool := make([]netutil.Prefix, 0, 512)
	for step := 0; step < 20000; step++ {
		if rng.Intn(3) != 0 || len(pool) == 0 { // insert
			p := netutil.PrefixFrom(netutil.Addr(rng.Uint32()), 4+rng.Intn(29))
			tr.Insert(p, step)
			if _, dup := ref[p]; !dup {
				pool = append(pool, p)
			}
			ref[p] = step
		} else { // delete
			i := rng.Intn(len(pool))
			p := pool[i]
			pool[i] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			_, inRef := ref[p]
			if got := tr.Delete(p); got != inRef {
				t.Fatalf("Delete(%v) = %v, ref has %v", p, got, inRef)
			}
			delete(ref, p)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, ref = %d", step, tr.Len(), len(ref))
		}
	}
	// Final cross-check on lookups.
	for i := 0; i < 2000; i++ {
		a := netutil.Addr(rng.Uint32())
		_, _, gok := tr.Lookup(a)
		wok := false
		for p := range ref {
			if p.Contains(a) {
				wok = true
				break
			}
		}
		if gok != wok {
			t.Fatalf("Lookup(%v) hit=%v, ref hit=%v", a, gok, wok)
		}
	}
}

// Property: for any set of prefixes, the looked-up prefix always contains
// the address and no stored prefix longer than it does.
func TestLookupIsLongestProperty(t *testing.T) {
	f := func(seeds []uint32, probe uint32) bool {
		tr := New[struct{}]()
		stored := map[netutil.Prefix]bool{}
		for i, s := range seeds {
			p := netutil.PrefixFrom(netutil.Addr(s), (i%25)+8)
			tr.Insert(p, struct{}{})
			stored[p] = true
		}
		a := netutil.Addr(probe)
		got, _, ok := tr.Lookup(a)
		if !ok {
			for p := range stored {
				if p.Contains(a) {
					return false // missed an existing match
				}
			}
			return true
		}
		if !got.Contains(a) || !stored[got] {
			return false
		}
		for p := range stored {
			if p.Contains(a) && p.Bits() > got.Bits() {
				return false // not the longest
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixesMatchesWalk(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Insert(netutil.PrefixFrom(netutil.AddrFrom4(byte(i), byte(i*3), 0, 0), 16), i)
	}
	ps := tr.Prefixes()
	if len(ps) != tr.Len() {
		t.Fatalf("Prefixes len = %d, tree len = %d", len(ps), tr.Len())
	}
}
