// Package report renders experiment results as fixed-width text tables,
// ASCII histograms, and downsampled series — the output format of the
// cmd/experiments tool that regenerates every table and figure in the
// paper.
package report

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Table is a titled grid. Columns are right-aligned except the first.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FmtFloat(v)
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			b.WriteString(pad(cell, w, i != 0))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int, right bool) string {
	if len(s) >= w {
		return s
	}
	fill := strings.Repeat(" ", w-len(s))
	if right {
		return fill + s
	}
	return s + fill
}

// FmtInt renders n with thousands separators, the style of the paper's
// tables (e.g. 11,665,713).
func FmtInt(n int) string {
	s := strconv.Itoa(n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// FmtFloat renders f compactly (3 significant decimals, no trailing
// zeros).
func FmtFloat(f float64) string {
	s := strconv.FormatFloat(f, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// FmtPct renders a ratio as a percentage with one decimal.
func FmtPct(f float64) string {
	return strconv.FormatFloat(f*100, 'f', 1, 64) + "%"
}

// Histogram renders labeled counts as ASCII bars scaled to maxWidth.
func Histogram(title string, labels []string, counts []int, maxWidth int) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	max := 0
	labelW := 0
	for i, c := range counts {
		if c > max {
			max = c
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	if max == 0 {
		max = 1
	}
	for i, c := range counts {
		bar := int(float64(c) / float64(max) * float64(maxWidth))
		fmt.Fprintf(&b, "%s |%s %s\n", pad(labels[i], labelW, true),
			strings.Repeat("#", bar), FmtInt(c))
	}
	return b.String()
}

// Downsample reduces a monotone-x series to at most n points spaced
// logarithmically along the index axis — how the experiments print the
// paper's log-log figures without emitting every cluster.
func Downsample(ys []int, n int) (idx []int, vals []int) {
	if len(ys) == 0 || n <= 0 {
		return nil, nil
	}
	if len(ys) <= n {
		for i, y := range ys {
			idx = append(idx, i+1)
			vals = append(vals, y)
		}
		return idx, vals
	}
	seen := map[int]bool{}
	logMax := math.Log(float64(len(ys)))
	for k := 0; k < n; k++ {
		pos := int(math.Exp(logMax*float64(k)/float64(n-1))) - 1
		if k == n-1 {
			// Pin the final sample to the last element; exp(log(N)) can
			// land at N-ε and round the endpoint away.
			pos = len(ys) - 1
		}
		if pos < 0 {
			pos = 0
		}
		if pos >= len(ys) {
			pos = len(ys) - 1
		}
		if seen[pos] {
			continue
		}
		seen[pos] = true
		idx = append(idx, pos+1)
		vals = append(vals, ys[pos])
	}
	return idx, vals
}

// SeriesTable prints several downsampled y-series against their shared
// 1-based rank axis. All series must be equally long.
func SeriesTable(title string, xLabel string, names []string, series [][]int, points int) string {
	if len(series) == 0 {
		return title + "\n(empty)\n"
	}
	for _, s := range series[1:] {
		if len(s) != len(series[0]) {
			panic("report: SeriesTable length mismatch")
		}
	}
	idx, _ := Downsample(series[0], points)
	t := &Table{Title: title, Headers: append([]string{xLabel}, names...)}
	for _, i := range idx {
		row := make([]interface{}, 0, len(series)+1)
		row = append(row, FmtInt(i))
		for _, s := range series {
			row = append(row, FmtInt(s[i-1]))
		}
		t.AddRow(row...)
	}
	return t.String()
}
