package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Demo", Headers: []string{"name", "count"}}
	tb.AddRow("alpha", 12345)
	tb.AddRow("b", 7)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "====") {
		t.Errorf("missing title/underline:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + underline + header + separator + 2 rows
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Right-aligned numeric column: "7" must be padded left.
	if !strings.HasSuffix(lines[5], "    7") && !strings.HasSuffix(lines[5], " 7") {
		t.Errorf("numeric column not right-aligned: %q", lines[5])
	}
}

func TestAddRowStringers(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b", "c"}}
	tb.AddRow("x", 1.5, 3)
	if tb.Rows[0][1] != "1.5" || tb.Rows[0][2] != "3" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestFmtInt(t *testing.T) {
	cases := map[int]string{
		0:        "0",
		999:      "999",
		1000:     "1,000",
		11665713: "11,665,713",
		-1234567: "-1,234,567",
		100:      "100",
		-12:      "-12",
	}
	for in, want := range cases {
		if got := FmtInt(in); got != want {
			t.Errorf("FmtInt(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFmtFloatAndPct(t *testing.T) {
	if got := FmtFloat(0.5); got != "0.5" {
		t.Errorf("FmtFloat(0.5) = %q", got)
	}
	if got := FmtFloat(2.0); got != "2" {
		t.Errorf("FmtFloat(2.0) = %q", got)
	}
	if got := FmtFloat(0.125); got != "0.125" {
		t.Errorf("FmtFloat(0.125) = %q", got)
	}
	if got := FmtPct(0.954); got != "95.4%" {
		t.Errorf("FmtPct = %q", got)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("H", []string{"a", "bb"}, []int{10, 5}, 10)
	if !strings.Contains(out, "##########") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Errorf("half bar missing:\n%s", out)
	}
	// All-zero histogram must not divide by zero.
	zero := Histogram("Z", []string{"x"}, []int{0}, 10)
	if !strings.Contains(zero, "0") {
		t.Errorf("zero histogram:\n%s", zero)
	}
}

func TestDownsample(t *testing.T) {
	ys := make([]int, 1000)
	for i := range ys {
		ys[i] = i
	}
	idx, vals := Downsample(ys, 20)
	if len(idx) > 20 || len(idx) < 10 {
		t.Fatalf("downsampled to %d points", len(idx))
	}
	if idx[0] != 1 || idx[len(idx)-1] != 1000 {
		t.Fatalf("endpoints = %d, %d", idx[0], idx[len(idx)-1])
	}
	for i := range idx {
		if vals[i] != ys[idx[i]-1] {
			t.Fatalf("vals misaligned at %d", i)
		}
		if i > 0 && idx[i] <= idx[i-1] {
			t.Fatalf("indexes not strictly increasing: %v", idx)
		}
	}
	// Short input passes through.
	idx, vals = Downsample([]int{5, 6}, 10)
	if len(idx) != 2 || vals[0] != 5 || vals[1] != 6 {
		t.Fatalf("short input: %v %v", idx, vals)
	}
	if i, v := Downsample(nil, 5); i != nil || v != nil {
		t.Fatal("empty input must return nil")
	}
}

func TestSeriesTable(t *testing.T) {
	out := SeriesTable("S", "rank", []string{"clients", "requests"},
		[][]int{{5, 4, 3}, {50, 40, 30}}, 10)
	if !strings.Contains(out, "clients") || !strings.Contains(out, "50") {
		t.Errorf("series table:\n%s", out)
	}
	empty := SeriesTable("E", "rank", nil, nil, 5)
	if !strings.Contains(empty, "empty") {
		t.Errorf("empty series table: %q", empty)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	SeriesTable("bad", "x", []string{"a", "b"}, [][]int{{1, 2}, {1}}, 5)
}

func TestTableRaggedRows(t *testing.T) {
	// Rows wider than the header must render, not panic.
	tb := &Table{Headers: []string{"one"}}
	tb.AddRow("a", "extra", "more")
	out := tb.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "more") {
		t.Fatalf("ragged row lost cells:\n%s", out)
	}
	// And rows narrower than the header.
	tb2 := &Table{Headers: []string{"a", "b", "c"}}
	tb2.AddRow("only")
	if !strings.Contains(tb2.String(), "only") {
		t.Fatal("narrow row lost")
	}
}
