package retry

import (
	"errors"
	"sync"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
)

// Breaker state observability. The open-breaker gauge counts breakers
// currently open across the process; opens and fast-fails accumulate.
var (
	breakerOpens     = obsv.C("retry.breaker.opens")
	breakerFastFails = obsv.C("retry.breaker.fast_fails")
	breakersOpen     = obsv.G("retry.breaker.open")
)

// ErrOpen is returned (wrapped) by clients whose circuit breaker is open:
// the peer has failed enough consecutive attempts that further queries
// fail fast instead of burning a timeout ladder each.
var ErrOpen = errors.New("retry: circuit breaker open")

// Breaker is a consecutive-failure circuit breaker. Closed passes all
// traffic; Threshold consecutive recorded failures open it; after
// Cooldown one trial request is allowed through (half-open) and its
// outcome closes or re-opens the circuit.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the breaker;
	// values below 1 disable it (Allow always true).
	Threshold int
	// Cooldown is how long the breaker stays open before permitting a
	// half-open trial.
	Cooldown time.Duration
	// Now is the clock, overridable in tests.
	Now func() time.Time

	mu       sync.Mutex
	failures int
	openedAt time.Time
	open     bool
	halfOpen bool
	opens    int
	fastFail int
}

// NewBreaker returns a breaker that opens after threshold consecutive
// failures and re-tests the peer every cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{Threshold: threshold, Cooldown: cooldown}
}

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

// Allow reports whether a request may proceed. When the breaker is open
// and the cooldown has elapsed, it admits exactly one half-open trial.
func (b *Breaker) Allow() bool {
	if b == nil || b.Threshold < 1 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.now().Sub(b.openedAt) >= b.Cooldown && !b.halfOpen {
		b.halfOpen = true
		return true
	}
	b.fastFail++
	return false
}

// Record feeds an attempt outcome into the breaker. nil closes the
// circuit and resets the failure run; an error extends the run and opens
// the circuit at Threshold (or immediately re-opens a half-open trial).
func (b *Breaker) Record(err error) {
	if b == nil || b.Threshold < 1 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.failures = 0
		if b.open {
			breakersOpen.Add(-1)
		}
		b.open = false
		b.halfOpen = false
		return
	}
	b.failures++
	if b.halfOpen || (!b.open && b.failures >= b.Threshold) {
		if !b.open {
			breakersOpen.Add(1)
		}
		b.open = true
		b.halfOpen = false
		b.openedAt = b.now()
		b.opens++
		breakerOpens.Inc()
	}
}

// State reports the breaker's current position: "closed", "open", or
// "half-open" (cooldown elapsed, one trial admitted). A nil or disabled
// breaker is always "closed". Trace spans attach this so a dump shows
// whether a fast-fail came from a tripped circuit.
func (b *Breaker) State() string {
	if b == nil || b.Threshold < 1 {
		return "closed"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.open:
		return "closed"
	case b.halfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// Opens returns how many times the breaker has tripped open — a
// degradation counter the validation report surfaces.
func (b *Breaker) Opens() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// FastFails returns how many requests were rejected without touching the
// network while the breaker was open.
func (b *Breaker) FastFails() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fastFail
}
