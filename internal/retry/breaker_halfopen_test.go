package retry

// Half-open concurrency: when the cooldown elapses, exactly one caller
// wins the trial slot; every concurrent loser fails fast. This is the
// contract the sink exporter leans on — a recovering push endpoint gets
// probed by one batch, not stampeded by the whole backlog.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tripOpen drives b to the open state and returns a clock the test
// controls.
func tripOpen(t *testing.T, b *Breaker) *time.Time {
	t.Helper()
	now := time.Unix(1000, 0)
	b.Now = func() time.Time { return now }
	for i := 0; i < b.Threshold; i++ {
		b.Record(errors.New("down"))
	}
	if st := b.State(); st != "open" {
		t.Fatalf("state after %d failures = %q, want open", b.Threshold, st)
	}
	return &now
}

func TestBreakerHalfOpenAdmitsExactlyOneConcurrentProbe(t *testing.T) {
	b := NewBreaker(3, time.Second)
	now := tripOpen(t, b)
	*now = now.Add(2 * time.Second) // cooldown elapsed: next Allow is the trial

	const callers = 32
	var admitted, rejected atomic.Int32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow() {
				admitted.Add(1)
			} else {
				rejected.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if admitted.Load() != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", admitted.Load())
	}
	if rejected.Load() != callers-1 {
		t.Fatalf("rejected %d, want %d", rejected.Load(), callers-1)
	}
	if ff := b.FastFails(); ff < callers-1 {
		t.Fatalf("fast-fails = %d, want >= %d (losers must not touch the network)", ff, callers-1)
	}
	if st := b.State(); st != "half-open" {
		t.Fatalf("state = %q, want half-open while the trial is in flight", st)
	}
}

func TestBreakerHalfOpenTrialFailureReopensAndRearms(t *testing.T) {
	b := NewBreaker(2, time.Second)
	now := tripOpen(t, b)
	*now = now.Add(time.Second)

	if !b.Allow() {
		t.Fatal("trial not admitted after cooldown")
	}
	b.Record(errors.New("still down"))
	if st := b.State(); st != "open" {
		t.Fatalf("state after failed trial = %q, want open", st)
	}
	// The failed trial restarts the cooldown from its failure time: an
	// immediate retry fails fast, a later one gets the next trial slot.
	if b.Allow() {
		t.Fatal("probe admitted immediately after failed trial")
	}
	*now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("next trial not admitted after second cooldown")
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("opens = %d, want 2 (initial trip + failed trial)", got)
	}
}

func TestBreakerHalfOpenTrialSuccessClosesForAll(t *testing.T) {
	b := NewBreaker(2, time.Second)
	now := tripOpen(t, b)
	*now = now.Add(time.Second)

	if !b.Allow() {
		t.Fatal("trial not admitted")
	}
	b.Record(nil)
	if st := b.State(); st != "closed" {
		t.Fatalf("state after successful trial = %q, want closed", st)
	}
	// Closed circuit admits everyone again, concurrently.
	var admitted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if admitted.Load() != 16 {
		t.Fatalf("closed breaker admitted %d/16", admitted.Load())
	}
}

// TestBreakerHalfOpenStampede hammers the full open → half-open →
// resolve cycle from many goroutines with a racing wall clock, checking
// the one-trial invariant on every lap. Run under -race this doubles as
// the breaker's memory-safety audit.
func TestBreakerHalfOpenStampede(t *testing.T) {
	b := NewBreaker(1, time.Millisecond)
	for lap := 0; lap < 50; lap++ {
		b.Record(errors.New("down")) // trip (threshold 1)
		time.Sleep(2 * time.Millisecond)

		var admitted atomic.Int32
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if b.Allow() {
					admitted.Add(1)
				}
			}()
		}
		wg.Wait()
		if n := admitted.Load(); n != 1 {
			t.Fatalf("lap %d: %d probes admitted, want 1", lap, n)
		}
		b.Record(nil) // trial succeeds, circuit closes for the next lap
	}
}
