// Package retry centralizes the resilience primitives the live
// measurement pipeline needs against a lossy Internet: a retry policy
// (exponential backoff with jitter and per-attempt deadlines), an error
// classifier separating transient transport failures from definitive
// protocol answers, and a circuit breaker so a dead peer fails fast
// instead of pinning every lookup on a full timeout ladder.
//
// The paper's Section 3.3 pipeline budgeted for exactly these failures —
// roughly half the nslookup probes never resolved and unanswered
// traceroute probes were retried with bounded patience — so the clients
// in dnswire, whois and httpproxy share this package rather than each
// growing an ad-hoc loop.
package retry

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
)

// Resilience observability: every Policy.Do loop in the process feeds
// the same counters, so "retry.retries" climbing against "retry.attempts"
// is the first sign the live pipeline's peers are degrading. The counters
// sit next to network waits, never in CPU-bound paths.
var (
	retryAttempts  = obsv.C("retry.attempts")
	retryRetries   = obsv.C("retry.retries")
	retrySuccesses = obsv.C("retry.successes")
	retryFatal     = obsv.C("retry.fatal")
	retryExhausted = obsv.C("retry.exhausted")
	retryBackoffNs = obsv.H("retry.backoff.ns")
)

// Class buckets an attempt error for the retry loop.
type Class int

const (
	// Transient errors (timeouts, resets, dials to a busy peer) are worth
	// another attempt after backoff.
	Transient Class = iota
	// Fatal errors are definitive answers (NXDOMAIN, malformed protocol
	// state that will not heal): retrying cannot change the outcome.
	Fatal
)

// Classifier maps an attempt error to a Class. A nil Classifier treats
// every error as Transient.
type Classifier func(error) Class

// Policy drives a bounded retry loop. The zero value retries nothing;
// use DefaultPolicy for sensible live-pipeline defaults.
type Policy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Values below 1 behave as 1.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = no cap).
	MaxDelay time.Duration
	// Jitter randomizes each backoff by ±Jitter fraction (0.5 = ±50%),
	// decorrelating clients that share a recovering server.
	Jitter float64
	// PerAttempt bounds each attempt with a context deadline (0 = none;
	// the caller's context still applies).
	PerAttempt time.Duration
	// Classify decides whether an error is worth retrying; nil means
	// everything is Transient.
	Classify Classifier
	// Rand yields uniform values in [0,1) for jitter. Nil disables
	// jitter randomization (deterministic midpoint), which keeps tests
	// reproducible without threading an rng everywhere.
	Rand func() float64
	// Sleep is the clock hook, overridable in tests; nil uses a real
	// context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// SpanName names the per-attempt trace span recorded into the flight
	// recorder ("retry.attempt" when empty), so a client can label its
	// attempts (e.g. "dnswire.attempt") without wrapping Do.
	SpanName string
}

// DefaultPolicy is the live pipeline's stance: three attempts, 50 ms
// initial backoff doubling to a 500 ms cap, ±50% jitter.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts: 3,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Jitter:      0.5,
	}
}

// Backoff returns the delay before attempt number attempt (attempt 1 is
// the first retry). Exported so tests and reports can explain schedules.
func (p Policy) Backoff(attempt int) time.Duration {
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		u := 0.5 // deterministic midpoint without an rng
		if p.Rand != nil {
			u = p.Rand()
		}
		// Scale into [1-Jitter, 1+Jitter).
		d = time.Duration(float64(d) * (1 + p.Jitter*(2*u-1)))
	}
	return d
}

// Do runs op under the policy. It returns the number of attempts made and
// the first nil or Fatal error, or the last Transient error once attempts
// are exhausted. op receives a per-attempt context when PerAttempt is set.
// Each attempt records a trace span (named by SpanName) carrying the
// attempt number and, on retries, the backoff just slept — the per-attempt
// causality a flight-recorder dump needs to explain a slow lookup.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) (attempts int, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	max := p.MaxAttempts
	if max < 1 {
		max = 1
	}
	spanName := p.SpanName
	if spanName == "" {
		spanName = "retry.attempt"
	}
	var lastErr error
	for attempt := 0; attempt < max; attempt++ {
		var backoff time.Duration
		if attempt > 0 {
			backoff = p.Backoff(attempt)
			retryRetries.Inc()
			retryBackoffNs.Observe(int64(backoff))
			if err := p.sleep(ctx, backoff); err != nil {
				return attempts, err
			}
		}
		attempts++
		retryAttempts.Inc()
		spanCtx, sp := obsv.StartTraceSpan(ctx, spanName)
		sp.SetAttrInt("attempt", int64(attempts))
		if attempt > 0 {
			sp.SetAttrInt("backoff_ns", int64(backoff))
		}
		attemptCtx, cancel := p.attemptContext(spanCtx)
		err := op(attemptCtx)
		cancel()
		if err != nil {
			sp.Fail(err)
		}
		sp.End()
		if err == nil {
			retrySuccesses.Inc()
			return attempts, nil
		}
		lastErr = err
		if p.classify(err) == Fatal {
			retryFatal.Inc()
			return attempts, err
		}
		if ctx.Err() != nil {
			return attempts, lastErr
		}
	}
	retryExhausted.Inc()
	return attempts, lastErr
}

func (p Policy) attemptContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.PerAttempt <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, p.PerAttempt)
}

func (p Policy) classify(err error) Class {
	if p.Classify == nil {
		return Transient
	}
	return p.Classify(err)
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// IsTimeout reports whether err is a deadline-style failure (net.Error
// timeout or context deadline), the dominant loss signature on UDP.
func IsTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Attempts annotates err with how many attempts were spent on it, for
// error messages that should explain the patience already applied.
func Attempts(attempts int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("after %d attempt(s): %w", attempts, err)
}
