package retry

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func TestDoSucceedsFirstTry(t *testing.T) {
	p := Policy{MaxAttempts: 3, Sleep: noSleep}
	calls := 0
	attempts, err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return nil
	})
	if err != nil || attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestDoRetriesTransient(t *testing.T) {
	p := Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, Sleep: noSleep}
	calls := 0
	attempts, err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("attempts=%d err=%v", attempts, err)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, Sleep: noSleep}
	attempts, err := p.Do(context.Background(), func(context.Context) error { return errBoom })
	if !errors.Is(err, errBoom) || attempts != 3 {
		t.Fatalf("attempts=%d err=%v", attempts, err)
	}
}

func TestDoStopsOnFatal(t *testing.T) {
	fatal := errors.New("nxdomain")
	p := Policy{
		MaxAttempts: 5,
		Sleep:       noSleep,
		Classify: func(err error) Class {
			if errors.Is(err, fatal) {
				return Fatal
			}
			return Transient
		},
	}
	calls := 0
	attempts, err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 2 {
			return fatal
		}
		return errBoom
	})
	if !errors.Is(err, fatal) || attempts != 2 {
		t.Fatalf("attempts=%d err=%v", attempts, err)
	}
}

func TestDoHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, BaseDelay: time.Hour} // real Sleep, must not block
	attempts, err := p.Do(ctx, func(context.Context) error {
		cancel()
		return errBoom
	})
	if attempts != 1 || err == nil {
		t.Fatalf("attempts=%d err=%v", attempts, err)
	}
}

func TestPerAttemptDeadline(t *testing.T) {
	p := Policy{MaxAttempts: 2, PerAttempt: 10 * time.Millisecond, Sleep: noSleep}
	var sawDeadline bool
	p.Do(context.Background(), func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			sawDeadline = true
		}
		return nil
	})
	if !sawDeadline {
		t.Fatal("attempt context should carry a deadline")
	}
}

func TestBackoffSchedule(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond}
	want := []time.Duration{10, 20, 35, 35} // ms, doubling then capped
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w*time.Millisecond {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	if p.Backoff(0) != 0 {
		t.Fatal("attempt 0 must have no backoff")
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	for _, u := range []float64{0, 0.25, 0.5, 0.999} {
		p := Policy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5, Rand: func() float64 { return u }}
		d := p.Backoff(1)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [50ms,150ms] at u=%v", d, u)
		}
	}
}

func TestIsTimeout(t *testing.T) {
	if !IsTimeout(context.DeadlineExceeded) {
		t.Fatal("context deadline is a timeout")
	}
	var ne net.Error = &net.OpError{Err: timeoutErr{}}
	if !IsTimeout(fmt.Errorf("wrap: %w", ne)) {
		t.Fatal("wrapped net timeout is a timeout")
	}
	if IsTimeout(errBoom) {
		t.Fatal("plain error is not a timeout")
	}
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, time.Second)
	b.Now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker must allow (failure %d)", i)
		}
		b.Record(errBoom)
	}
	if b.Allow() {
		t.Fatal("breaker must be open after threshold failures")
	}
	if b.Opens() != 1 || b.FastFails() != 1 {
		t.Fatalf("opens=%d fastFails=%d", b.Opens(), b.FastFails())
	}
	// Cooldown elapses: exactly one half-open trial.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("half-open trial must be admitted after cooldown")
	}
	if b.Allow() {
		t.Fatal("second request during half-open must fast-fail")
	}
	// Trial fails: re-open immediately.
	b.Record(errBoom)
	if b.Allow() {
		t.Fatal("failed trial must re-open the breaker")
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
	// Next trial succeeds: circuit closes fully.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("trial after second cooldown must be admitted")
	}
	b.Record(nil)
	for i := 0; i < 5; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker must allow everything")
		}
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b := NewBreaker(3, time.Second)
	b.Record(errBoom)
	b.Record(errBoom)
	b.Record(nil) // run broken
	b.Record(errBoom)
	b.Record(errBoom)
	if !b.Allow() {
		t.Fatal("non-consecutive failures must not open the breaker")
	}
}

func TestNilBreakerIsNoop(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker allows")
	}
	b.Record(errBoom)
	if b.Opens() != 0 || b.FastFails() != 0 {
		t.Fatal("nil breaker counts nothing")
	}
}

func TestAttempts(t *testing.T) {
	if Attempts(3, nil) != nil {
		t.Fatal("nil error stays nil")
	}
	err := Attempts(3, errBoom)
	if !errors.Is(err, errBoom) {
		t.Fatal("wrapped error must unwrap")
	}
}

func noSleep(context.Context, time.Duration) error { return nil }
