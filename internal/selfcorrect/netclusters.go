package selfcorrect

import (
	"sort"
	"strings"

	"github.com/netaware/netcluster/internal/cluster"
)

// Second-level clustering (Section 3.6): "we can further cluster nearby
// client clusters into network clusters. We use traceroute to do the
// higher level clustering. Typically, we run traceroute on a number of
// (r >= 1) randomly selected clients in each cluster and do suffix
// matching on the path towards each destination network."
//
// The suffix used here is one level above the client cluster's own: the
// hops upstream of the last-hop gateway (the destination AS's
// point-of-presence and border), so client clusters hanging off the same
// upstream infrastructure group together. Network clusters feed selective
// content distribution, proxy placement and load balancing.

// NetworkCluster is a group of client clusters sharing an upstream path
// suffix.
type NetworkCluster struct {
	// Key is the shared upstream path suffix (pipe-joined router names).
	Key string
	// Clusters are the member client clusters, in canonical prefix order.
	Clusters []*cluster.Cluster
	// Clients and Requests aggregate the members.
	Clients  int
	Requests int
}

// GroupClusters builds network clusters from a clustering result by
// probing up to r clients per cluster. Clusters whose probes yield no
// upstream suffix (completely hidden paths) each form their own singleton
// group, keyed by their prefix.
func (c *Corrector) GroupClusters(res *cluster.Result, r int) []NetworkCluster {
	if r < 1 {
		r = 1
	}
	groups := make(map[string]*NetworkCluster)
	for _, cl := range res.Clusters {
		key := c.upstreamKey(cl, r)
		if key == "" {
			key = "isolated:" + cl.Prefix.String()
		}
		g := groups[key]
		if g == nil {
			g = &NetworkCluster{Key: key}
			groups[key] = g
		}
		g.Clusters = append(g.Clusters, cl)
		g.Clients += cl.NumClients()
		g.Requests += cl.Requests
	}
	out := make([]NetworkCluster, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// upstreamKey probes up to r clients of a cluster and returns the
// majority upstream suffix: the trailing responsive hops with the final
// (gateway) hop removed, keeping the two routers above it.
func (c *Corrector) upstreamKey(cl *cluster.Cluster, r int) string {
	clients := sortedClients(cl)
	step := 1
	if len(clients) > r {
		step = len(clients) / r
	}
	votes := map[string]int{}
	for i := 0; i < len(clients); i += step {
		res := c.Tracer.OptimizedPath(clients[i])
		hops := res.ResponsiveHops
		if len(hops) >= 1 && strings.HasPrefix(hops[len(hops)-1], "gw") {
			hops = hops[:len(hops)-1] // drop the network-specific gateway
		}
		if len(hops) == 0 {
			continue
		}
		if len(hops) > 2 {
			hops = hops[len(hops)-2:]
		}
		votes[strings.Join(hops, "|")]++
	}
	best, bestN := "", 0
	for k, n := range votes {
		if n > bestN || (n == bestN && k < best) {
			best, bestN = k, n
		}
	}
	return best
}
