package selfcorrect

import (
	"strings"
	"testing"
)

func TestGroupClustersCoversAll(t *testing.T) {
	f := setup(t)
	groups := f.corr.GroupClusters(f.result, 2)
	if len(groups) == 0 {
		t.Fatal("no network clusters")
	}
	total := 0
	for _, g := range groups {
		total += len(g.Clusters)
		if len(g.Clusters) == 0 {
			t.Fatal("empty network cluster")
		}
	}
	if total != len(f.result.Clusters) {
		t.Fatalf("groups cover %d of %d clusters", total, len(f.result.Clusters))
	}
	// Second-level clustering must actually coarsen: fewer groups than
	// client clusters.
	if len(groups) >= len(f.result.Clusters) {
		t.Errorf("no coarsening: %d groups for %d clusters", len(groups), len(f.result.Clusters))
	}
}

func TestGroupClustersSortedByRequests(t *testing.T) {
	f := setup(t)
	groups := f.corr.GroupClusters(f.result, 1)
	for i := 1; i < len(groups); i++ {
		if groups[i].Requests > groups[i-1].Requests {
			t.Fatal("groups not sorted by requests")
		}
	}
}

func TestGroupClustersAggregates(t *testing.T) {
	f := setup(t)
	groups := f.corr.GroupClusters(f.result, 2)
	for _, g := range groups {
		clients, requests := 0, 0
		for _, cl := range g.Clusters {
			clients += cl.NumClients()
			requests += cl.Requests
		}
		if clients != g.Clients || requests != g.Requests {
			t.Fatalf("aggregate mismatch in group %q", g.Key)
		}
	}
}

func TestGroupClustersShareUpstream(t *testing.T) {
	// Members of a multi-cluster group must actually share ground-truth
	// upstream infrastructure: same AS pop (or same national gateway).
	f := setup(t)
	groups := f.corr.GroupClusters(f.result, 3)
	checked := 0
	for _, g := range groups {
		if len(g.Clusters) < 2 || strings.HasPrefix(g.Key, "isolated:") {
			continue
		}
		type popKey struct {
			asn uint32
			pop int
		}
		pops := map[popKey]bool{}
		countries := map[string]bool{}
		for _, cl := range g.Clusters {
			for a := range cl.Clients {
				n, ok := f.world.NetworkOf(a)
				if !ok {
					continue
				}
				pops[popKey{n.AS.Number, n.Pop}] = true
				countries[n.Country.Code] = true
				break // one representative client suffices
			}
		}
		// Shared suffix means either one pop or one national gateway
		// country hiding several pops.
		natgw := strings.Contains(g.Key, "natgw.")
		if !natgw && len(pops) > 1 {
			t.Errorf("group %q spans %d pops without a national gateway", g.Key, len(pops))
		}
		if natgw && len(countries) > 1 {
			t.Errorf("national-gateway group %q spans countries %v", g.Key, countries)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no multi-cluster groups to check in this world")
	}
}
