// Package selfcorrect implements the paper's Section 3.5 self-correction
// and adaptation stage. Periodic traceroute (and DNS) sampling of clusters
// is used to
//
//   - absorb the ~0.1% of clients no routing-table prefix covered, by
//     treating each as a singleton cluster and merging it into clusters
//     with a matching probe signature;
//   - merge clusters that the sampling says belong to one network
//     (case (i) in the paper); and
//   - split clusters whose clients belong to several networks — the
//     signature of route aggregation (case (ii)).
//
// After every merge/split the identifying prefix is recomputed as the
// longest common prefix of the members' addresses, the paper's "the
// network prefix and netmask will be recomputed accordingly".
package selfcorrect

import (
	"sort"
	"strings"

	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/dnssim"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/tracesim"
)

// Corrector samples clusters through the same probing machinery the
// validation stage uses.
type Corrector struct {
	Resolver *dnssim.Resolver
	Tracer   *tracesim.Tracer
	// SampleSize is how many clients are probed per cluster (the paper's
	// r ≥ 1 random clients; probing every client of every cluster is
	// exactly what the paper's design avoids).
	SampleSize int
}

// Outcome summarizes one correction pass.
type Outcome struct {
	// Corrected is the re-clustered result.
	Corrected *cluster.Result
	// MergedAway is how many clusters disappeared into merges.
	MergedAway int
	// SplitInto is how many extra clusters splitting produced.
	SplitInto int
	// Absorbed is how many previously unclustered clients now have a
	// cluster.
	Absorbed int
	// Probes and Lookups are the sampling cost of the pass.
	Probes  int
	Lookups int
}

// signature keys a client by what probing reveals: the DNS non-trivial
// suffix when the name resolves, else the trailing path hops. The second
// return distinguishes the two keying modes: keys of different modes are
// not comparable (a resolvable and an unresolvable client may well share a
// network).
func (c *Corrector) signature(addr netutil.Addr) (key string, dns bool) {
	if s, ok := c.Resolver.Suffix(addr); ok {
		return "dns:" + s, true
	}
	return "path:" + strings.Join(c.Tracer.OptimizedPath(addr).PathSuffix(2), "|"), false
}

// informative reports whether a key distinguishes administrative entities
// at all. Path keys ending at a national gateway cover a whole country and
// carry no attribution power; everything else does.
func informative(key string) bool {
	if strings.HasPrefix(key, "dns:") {
		return true
	}
	i := strings.LastIndexByte(key, '|')
	last := key[i+1:]
	return strings.HasPrefix(last, "gw.") || strings.HasPrefix(last, "dst:")
}

// networkUnique reports whether a key pins down a single network, which is
// the bar for driving merges and absorption. Path keys ending at a network
// gateway or at the destination do; DNS suffix keys do NOT — a non-trivial
// name suffix is shared across an organization's networks (cs.wits.ac.za
// and math.wits.ac.za both end in wits.ac.za), so merging on it would glue
// sibling departments together. The paper reaches the same position:
// suffix-based merging of too-small clusters is listed as ongoing work,
// while its merge/split corrections come from traceroute sampling.
func networkUnique(key string) bool {
	return !strings.HasPrefix(key, "dns:") && informative(key)
}

// Correct runs one self-correction pass over res and re-clusters its log.
func (c *Corrector) Correct(res *cluster.Result) Outcome {
	probes0, lookups0 := c.Tracer.Probes, c.Resolver.Queries
	sampleSize := c.SampleSize
	if sampleSize < 1 {
		sampleSize = 3
	}

	// override maps a client to its corrected cluster prefix; clients not
	// present keep their original assignment.
	override := make(map[netutil.Addr]netutil.Prefix)

	// Pass 1: sample every cluster; record signatures.
	type group struct {
		members []netutil.Addr // sampled members sharing one signature
	}
	// bySig collects, per informative signature, which clusters' samples
	// produced it — the merge candidates.
	bySig := make(map[string][]*cluster.Cluster)
	sigGroups := make(map[*cluster.Cluster]map[string]*group)

	var out Outcome
	for _, cl := range res.Clusters {
		clients := sortedClients(cl)
		n := len(clients)
		step := 1
		if n > sampleSize {
			step = n / sampleSize
		}
		groups := make(map[string]*group)
		for i := 0; i < n; i += step {
			a := clients[i]
			key, _ := c.signature(a)
			g := groups[key]
			if g == nil {
				g = &group{}
				groups[key] = g
			}
			g.members = append(g.members, a)
		}
		sigGroups[cl] = groups
		for key := range groups {
			if networkUnique(key) {
				bySig[key] = append(bySig[key], cl)
			}
		}
	}

	// Pass 2: merges. Clusters whose samples produced only one signature,
	// shared with other such clusters, belong to one network.
	mergeTarget := make(map[*cluster.Cluster]netutil.Prefix)
	for key, cls := range bySig {
		if len(cls) < 2 {
			continue
		}
		// Only merge clusters that look homogeneous themselves.
		var homogeneous []*cluster.Cluster
		for _, cl := range cls {
			if len(sigGroups[cl]) == 1 {
				homogeneous = append(homogeneous, cl)
			}
		}
		if len(homogeneous) < 2 {
			continue
		}
		var members []netutil.Addr
		for _, cl := range homogeneous {
			members = append(members, sortedClients(cl)...)
		}
		p := netutil.CommonPrefix(members)
		for _, cl := range homogeneous {
			mergeTarget[cl] = p
		}
		out.MergedAway += len(homogeneous) - 1
		_ = key
	}
	for cl, p := range mergeTarget {
		for a := range cl.Clients {
			override[a] = p
		}
	}

	// Pass 3: splits. A cluster whose samples produced multiple signatures
	// of the same mode straddles networks: probe every client and
	// partition by signature.
	for _, cl := range res.Clusters {
		if _, merged := mergeTarget[cl]; merged {
			continue
		}
		groups := sigGroups[cl]
		dnsKeys, pathKeys := 0, 0
		for key := range groups {
			if strings.HasPrefix(key, "dns:") {
				dnsKeys++
			} else {
				pathKeys++
			}
		}
		if dnsKeys <= 1 && pathKeys <= 1 {
			continue
		}
		// Full probe of the cluster, then partition.
		parts := make(map[string][]netutil.Addr)
		for _, a := range sortedClients(cl) {
			key, _ := c.signature(a)
			parts[key] = append(parts[key], a)
		}
		if len(parts) < 2 {
			continue
		}
		// Clients keyed by an uninformative path signature cannot be
		// attributed; leave them with the original cluster prefix.
		created := 0
		for key, members := range parts {
			if !informative(key) {
				continue
			}
			p := netutil.CommonPrefix(members)
			for _, a := range members {
				override[a] = p
			}
			created++
		}
		if created > 1 {
			out.SplitInto += created - 1
		}
	}

	// Pass 4: absorb unclustered clients. Signature each; join an existing
	// cluster with the same signature, else group the leftovers by
	// signature into new clusters.
	sigToPrefix := make(map[string]netutil.Prefix)
	for cl, groups := range sigGroups {
		target := cl.Prefix
		if p, ok := mergeTarget[cl]; ok {
			target = p
		}
		for key := range groups {
			if networkUnique(key) {
				if _, dup := sigToPrefix[key]; !dup {
					sigToPrefix[key] = target
				}
			}
		}
	}
	orphanGroups := make(map[string][]netutil.Addr)
	for _, a := range res.Unclustered {
		key, _ := c.signature(a)
		if p, ok := sigToPrefix[key]; ok && networkUnique(key) {
			override[a] = p
			out.Absorbed++
			continue
		}
		orphanGroups[key] = append(orphanGroups[key], a)
	}
	for key, members := range orphanGroups {
		if !informative(key) && len(members) < 2 {
			// A lone client behind a national gateway: make it a singleton
			// cluster of its own address (the paper's starting point for
			// gradual merging).
			override[members[0]] = netutil.PrefixFrom(members[0], 32)
			out.Absorbed++
			continue
		}
		p := netutil.CommonPrefix(members)
		for _, a := range members {
			override[a] = p
		}
		out.Absorbed += len(members)
	}

	// Re-cluster the log under the corrected assignment.
	orig := originalAssigner(res)
	out.Corrected = cluster.ClusterLog(res.Log, cluster.Func{
		Label: res.Method + "+selfcorrect",
		Fn: func(a netutil.Addr) (netutil.Prefix, bool) {
			if p, ok := override[a]; ok {
				return p, true
			}
			return orig(a)
		},
	})
	out.Probes = c.Tracer.Probes - probes0
	out.Lookups = c.Resolver.Queries - lookups0
	return out
}

// originalAssigner replays res's client→prefix mapping.
func originalAssigner(res *cluster.Result) func(netutil.Addr) (netutil.Prefix, bool) {
	return func(a netutil.Addr) (netutil.Prefix, bool) {
		if cl, ok := res.ClusterOf(a); ok {
			return cl.Prefix, true
		}
		return netutil.Prefix{}, false
	}
}

func sortedClients(c *cluster.Cluster) []netutil.Addr {
	out := make([]netutil.Addr, 0, len(c.Clients))
	for a := range c.Clients {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
