package selfcorrect

import (
	"testing"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/dnssim"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/tracesim"
	"github.com/netaware/netcluster/internal/weblog"
)

type fixture struct {
	world  *inet.Internet
	merged *bgp.Merged
	log    *weblog.Log
	result *cluster.Result
	corr   *Corrector
}

var cached *fixture

func setup(t *testing.T) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	wcfg := inet.DefaultConfig()
	wcfg.NumASes = 400
	wcfg.NumTierOne = 10
	world, err := inet.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Higher aggregation and darkness than default so there is something
	// to correct.
	scfg := bgpsim.DefaultConfig()
	scfg.AggregateOnlyProb = 0.20
	scfg.DarkProb = 0.03
	sim := bgpsim.New(world, scfg)
	merged := bgpsim.Merge(sim.Collect())
	log, err := weblog.Generate(world, weblog.Nagano(0.02))
	if err != nil {
		t.Fatal(err)
	}
	res := cluster.ClusterLog(log, cluster.NetworkAware{Table: merged})
	cached = &fixture{
		world:  world,
		merged: merged,
		log:    log,
		result: res,
		corr: &Corrector{
			Resolver:   dnssim.New(world),
			Tracer:     tracesim.New(world, world.VantageASes()[0]),
			SampleSize: 3,
		},
	}
	return cached
}

// purity measures ground-truth accuracy: the fraction of clusters all of
// whose clients share one true network.
func purity(world *inet.Internet, res *cluster.Result) float64 {
	pure := 0
	for _, cl := range res.Clusters {
		nets := map[int]struct{}{}
		ok := true
		for a := range cl.Clients {
			n, found := world.NetworkOf(a)
			if !found {
				ok = false
				break
			}
			nets[n.ID] = struct{}{}
		}
		if ok && len(nets) == 1 {
			pure++
		}
	}
	return float64(pure) / float64(len(res.Clusters))
}

func TestCorrectImprovesCoverage(t *testing.T) {
	f := setup(t)
	if len(f.result.Unclustered) == 0 {
		t.Skip("no unclustered clients to absorb in this world")
	}
	out := f.corr.Correct(f.result)
	if out.Corrected.Coverage() <= f.result.Coverage() {
		t.Errorf("coverage %f -> %f did not improve",
			f.result.Coverage(), out.Corrected.Coverage())
	}
	if out.Corrected.Coverage() < 0.9999 {
		t.Errorf("corrected coverage = %f, self-correction should absorb everyone",
			out.Corrected.Coverage())
	}
	if out.Absorbed == 0 {
		t.Error("Absorbed = 0 despite unclustered clients")
	}
}

func TestCorrectImprovesPurity(t *testing.T) {
	f := setup(t)
	out := f.corr.Correct(f.result)
	before, after := purity(f.world, f.result), purity(f.world, out.Corrected)
	if after < before {
		t.Errorf("purity %f -> %f worsened", before, after)
	}
	if out.SplitInto == 0 {
		t.Error("aggregated world should force some splits")
	}
}

func TestCorrectPreservesRequests(t *testing.T) {
	f := setup(t)
	out := f.corr.Correct(f.result)
	if out.Corrected.TotalRequests != f.result.TotalRequests {
		t.Errorf("total requests changed: %d -> %d",
			f.result.TotalRequests, out.Corrected.TotalRequests)
	}
	// Every originally clustered client must still be clustered.
	if out.Corrected.NumClients() < f.result.NumClients() {
		t.Errorf("clients lost: %d -> %d", f.result.NumClients(), out.Corrected.NumClients())
	}
}

func TestCorrectIsStable(t *testing.T) {
	// A second pass over the corrected result should change little: the
	// mechanism must converge rather than oscillate.
	f := setup(t)
	first := f.corr.Correct(f.result)
	second := f.corr.Correct(first.Corrected)
	if second.Absorbed != 0 {
		t.Errorf("second pass absorbed %d clients; first pass should have finished", second.Absorbed)
	}
	drift := float64(abs(len(second.Corrected.Clusters)-len(first.Corrected.Clusters))) /
		float64(len(first.Corrected.Clusters))
	if drift > 0.05 {
		t.Errorf("cluster count drifted %.1f%% on the second pass", drift*100)
	}
}

func TestCorrectCountsProbes(t *testing.T) {
	f := setup(t)
	out := f.corr.Correct(f.result)
	if out.Probes == 0 || out.Lookups == 0 {
		t.Errorf("sampling must cost probes and lookups: %d, %d", out.Probes, out.Lookups)
	}
	// Sampling cost must be far below probing every client.
	totalClients := f.result.NumClients()
	if out.Lookups > totalClients*3 {
		t.Errorf("lookups = %d for %d clients; sampling is not sampling", out.Lookups, totalClients)
	}
}

func TestDefaultSampleSize(t *testing.T) {
	f := setup(t)
	c := &Corrector{Resolver: dnssim.New(f.world), Tracer: tracesim.New(f.world, f.world.VantageASes()[0])}
	out := c.Correct(f.result) // SampleSize unset → default
	if out.Corrected == nil {
		t.Fatal("no corrected result")
	}
}

func TestInformative(t *testing.T) {
	cases := []struct {
		key  string
		want bool
	}{
		{"dns:wits.ac.za", true},
		{"path:pop1.x.net|gw.cs.foo.edu", true},
		{"path:core1.backbone.net|natgw.hr.net", false},
		{"path:pop1.x.net|dst:host.foo.com", true},
		{"path:natgw.jp.net", false},
	}
	for _, c := range cases {
		if got := informative(c.key); got != c.want {
			t.Errorf("informative(%q) = %v, want %v", c.key, got, c.want)
		}
	}
}

func TestNetworkUnique(t *testing.T) {
	cases := []struct {
		key  string
		want bool
	}{
		{"dns:wits.ac.za", false}, // org-unique, not network-unique
		{"path:pop1.x.net|gw.cs.foo.edu", true},
		{"path:core1.backbone.net|natgw.hr.net", false},
		{"path:pop1.x.net|dst:host.foo.com", true},
	}
	for _, c := range cases {
		if got := networkUnique(c.key); got != c.want {
			t.Errorf("networkUnique(%q) = %v, want %v", c.key, got, c.want)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestCommonPrefixRecomputed(t *testing.T) {
	// Clusters produced by splitting must identify by a prefix containing
	// all their members.
	f := setup(t)
	out := f.corr.Correct(f.result)
	for _, cl := range out.Corrected.Clusters {
		for a := range cl.Clients {
			if !cl.Prefix.Contains(a) && cl.Prefix.Bits() > 0 {
				t.Fatalf("cluster %v does not contain its member %v", cl.Prefix, a)
			}
		}
	}
}
