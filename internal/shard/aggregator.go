package shard

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
)

var (
	aggPulls      = obsv.C("shard.aggregator.pulls")
	aggPullErrs   = obsv.C("shard.aggregator.pull_errors")
	aggLiveShards = obsv.G("shard.aggregator.live_shards")
	aggStaleMS    = obsv.G("shard.aggregator.staleness_ms")
)

// DefaultFederateEvery bounds how stale the aggregator's pulled shard
// snapshots may get before a scrape triggers a fresh pull.
const DefaultFederateEvery = 2 * time.Second

// MetricsSnapshotPath is the registry-snapshot endpoint the aggregator
// pulls from every member (obsv.SnapshotHandler's mount point).
const MetricsSnapshotPath = "/metrics.json"

// Member is one federation target: a label for its series and the base
// URL to pull from. The aggregator re-reads the member list on every
// pull, so a map whose shard addresses move (node revival) federates the
// new address on the next scrape.
type Member struct {
	Label string
	Base  string
}

// MemberState is one member's last pull outcome: its snapshot on
// success, the error otherwise.
type MemberState struct {
	Member
	Snap obsv.Snapshot
	Err  error
	At   time.Time
}

// AggregatorConfig configures an Aggregator.
type AggregatorConfig struct {
	// Members yields the current federation targets; called on every
	// pull. Required.
	Members func() []Member
	// Client issues the pulls (nil = http.DefaultClient).
	Client *http.Client
	// Timeout bounds one member's pull; 0 = DefaultRouterTimeout.
	Timeout time.Duration
	// MaxAge is the demand-pull threshold: a scrape older than this
	// triggers a refresh. 0 = DefaultFederateEvery.
	MaxAge time.Duration
	// LoadCounters are the counters whose per-member share feeds the
	// imbalance gauges (nil = DefaultLoadCounters).
	LoadCounters []string
	// Now is the scrape clock, overridable in tests.
	Now func() time.Time
}

// DefaultLoadCounters are the per-shard work counters the imbalance
// gauges are derived from: whichever of these a member exports first is
// its load figure (NodeServer and clusterd name theirs differently).
var DefaultLoadCounters = []string{"shard.node.addrs", "clusterd.batch.addrs"}

// Aggregator is the router-side metrics federation point: it pulls every
// member's registry snapshot from /metrics.json and serves the merged
// cluster view (per-shard labeled series plus cluster-wide quantiles)
// as one Prometheus page. Pulls happen on demand — a scrape or readiness
// probe older than MaxAge refreshes first — so an idle cluster costs no
// background traffic and a dead shard costs nothing until someone looks.
type Aggregator struct {
	cfg AggregatorConfig

	mu     sync.Mutex
	pullMu sync.Mutex // serializes refresh cycles, excluded from state reads
	state  []MemberState
	at     time.Time // completion time of the last refresh
}

// NewAggregator validates cfg and returns an aggregator.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	if cfg.Members == nil {
		return nil, fmt.Errorf("shard aggregator: nil Members source")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultRouterTimeout
	}
	if cfg.MaxAge <= 0 {
		cfg.MaxAge = DefaultFederateEvery
	}
	if cfg.LoadCounters == nil {
		cfg.LoadCounters = DefaultLoadCounters
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Aggregator{cfg: cfg}, nil
}

// Refresh pulls every member's snapshot concurrently and installs the
// new state. Member failures land in their MemberState, never abort the
// cycle.
func (a *Aggregator) Refresh(ctx context.Context) {
	a.pullMu.Lock()
	defer a.pullMu.Unlock()

	members := a.cfg.Members()
	state := make([]MemberState, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			snap, err := a.pull(ctx, m.Base)
			state[i] = MemberState{Member: m, Snap: snap, Err: err, At: a.cfg.Now()}
		}(i, m)
	}
	wg.Wait()

	aggPulls.Inc()
	live := 0
	for _, st := range state {
		if st.Err != nil {
			aggPullErrs.Inc()
		} else {
			live++
		}
	}
	aggLiveShards.Set(int64(live))

	a.mu.Lock()
	a.state = state
	a.at = a.cfg.Now()
	a.mu.Unlock()
}

func (a *Aggregator) pull(ctx context.Context, base string) (obsv.Snapshot, error) {
	ctx, cancel := context.WithTimeout(ctx, a.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+MetricsSnapshotPath, nil)
	if err != nil {
		return obsv.Snapshot{}, err
	}
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return obsv.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return obsv.Snapshot{}, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var snap obsv.Snapshot
	if err := decodeJSONBody(resp.Body, &snap); err != nil {
		return obsv.Snapshot{}, err
	}
	return snap, nil
}

// refreshIfStale refreshes when the last pull is older than MaxAge (or
// never happened).
func (a *Aggregator) refreshIfStale(ctx context.Context) {
	a.mu.Lock()
	fresh := !a.at.IsZero() && a.cfg.Now().Sub(a.at) < a.cfg.MaxAge
	a.mu.Unlock()
	if !fresh {
		a.Refresh(ctx)
	}
}

// Members returns the last refresh's per-member state.
func (a *Aggregator) Members() []MemberState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]MemberState(nil), a.state...)
}

// LiveShards counts members whose last pull succeeded.
func (a *Aggregator) LiveShards() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	live := 0
	for _, st := range a.state {
		if st.Err == nil {
			live++
		}
	}
	return live
}

// Staleness is the age of the last completed refresh; a very large
// value when none has happened yet.
func (a *Aggregator) Staleness() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.at.IsZero() {
		return time.Duration(1<<62 - 1)
	}
	return a.cfg.Now().Sub(a.at)
}

// memberSnapshots renders the live members' state for the federated
// writer.
func memberSnapshots(state []MemberState) []obsv.MemberSnapshot {
	var members []obsv.MemberSnapshot
	for _, st := range state {
		if st.Err != nil {
			continue
		}
		members = append(members, obsv.MemberSnapshot{Label: st.Label, Snap: st.Snap})
	}
	return members
}

// loadOf returns a member's load figure: the first configured load
// counter its snapshot exports.
func (a *Aggregator) loadOf(s obsv.Snapshot) (uint64, bool) {
	for _, name := range a.cfg.LoadCounters {
		if v, ok := s.Counters[name]; ok {
			return v, true
		}
	}
	return 0, false
}

// FederatedSnapshot flattens the last refresh into one registry-shaped
// snapshot: every member metric under cluster.s<label>.<name>, merged
// cluster-wide series under cluster.<name> (counters and gauges summed,
// histograms bucket-merged so their quantiles are true cluster
// quantiles), plus cluster.shards / cluster.live_shards gauges. Wiring
// this into sink.Config.Snapshot exports the federated view through the
// durable sink path.
func (a *Aggregator) FederatedSnapshot() obsv.Snapshot {
	state := a.Members()
	out := obsv.Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]obsv.HistogramSnapshot),
	}
	merged := make(map[string][]obsv.HistogramSnapshot)
	live := 0
	for _, st := range state {
		if st.Err != nil {
			continue
		}
		live++
		prefix := "cluster.s" + st.Label + "."
		for name, v := range st.Snap.Counters {
			out.Counters[prefix+name] = v
			out.Counters["cluster."+name] += v
		}
		for name, v := range st.Snap.Gauges {
			out.Gauges[prefix+name] = v
			out.Gauges["cluster."+name] += v
		}
		for name, h := range st.Snap.Histograms {
			out.Histograms[prefix+name] = h
			merged[name] = append(merged[name], h)
		}
	}
	for name, parts := range merged {
		out.Histograms["cluster."+name] = obsv.MergeHistogramSnapshots(parts...)
	}
	out.Gauges["cluster.shards"] = int64(len(state))
	out.Gauges["cluster.live_shards"] = int64(live)
	return out
}

// Handler serves the federated Prometheus page. Every scrape refreshes
// stale state first, then renders the per-shard labeled series and
// cluster quantiles, followed by the aggregator's own cluster gauges:
// shard totals, liveness, scrape age, and one load-share gauge per live
// shard (1000 = exactly its fair share of the cluster's load counter;
// the per-shard imbalance figure at a glance).
func (a *Aggregator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		a.refreshIfStale(r.Context())
		a.mu.Lock()
		state := append([]MemberState(nil), a.state...)
		age := a.cfg.Now().Sub(a.at)
		a.mu.Unlock()
		aggStaleMS.Set(age.Milliseconds())

		var buf bytes.Buffer
		if err := obsv.WriteFederatedPrometheus(&buf, memberSnapshots(state)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		a.writeClusterGauges(&buf, state, age)
		w.Header().Set("Content-Type", obsv.PrometheusContentType)
		w.Write(buf.Bytes())
	})
}

func (a *Aggregator) writeClusterGauges(w io.Writer, state []MemberState, age time.Duration) {
	live := 0
	type load struct {
		label string
		v     uint64
	}
	var loads []load
	var total uint64
	for _, st := range state {
		if st.Err != nil {
			continue
		}
		live++
		if v, ok := a.loadOf(st.Snap); ok {
			loads = append(loads, load{st.Label, v})
			total += v
		}
	}
	gauge := func(fam, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", fam, help, fam, fam, v)
	}
	gauge("netcluster_cluster_shards", "federation members", int64(len(state)))
	gauge("netcluster_cluster_live_shards", "members whose last metrics pull succeeded", int64(live))
	gauge("netcluster_cluster_scrape_age_ms", "age of the shard snapshots behind this page", age.Milliseconds())
	if total > 0 && len(loads) > 0 {
		sort.Slice(loads, func(i, j int) bool { return loads[i].label < loads[j].label })
		fam := "netcluster_cluster_load_share"
		fmt.Fprintf(w, "# HELP %s shard's share of the cluster load counter, in thousandths (fair share = %d)\n# TYPE %s gauge\n",
			fam, 1000/len(loads), fam)
		for _, l := range loads {
			fmt.Fprintf(w, "%s{shard=%q} %d\n", fam, l.label, l.v*1000/total)
		}
	}
}
