package shard

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
)

// clusterProbes returns addresses straddling every /8-sharded range.
func clusterProbes(t *testing.T) []netutil.Addr {
	t.Helper()
	var addrs []netutil.Addr
	for _, s := range []string{
		"1.2.3.4", "63.255.0.1", "64.0.0.1", "100.50.25.12",
		"128.9.160.27", "200.1.2.3", "255.254.253.252",
	} {
		a, err := netutil.ParseAddr(s)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	return addrs
}

// TestBatchCtxTracePropagation proves the tentpole end to end inside
// one process: a client span's trace ID flows through BatchCtx, across
// real loopback HTTP via the X-Netcluster-Trace header, into every
// shard node's server-side spans — one TraceID over router.batch,
// router.shard, node.batch and node.table.
func TestBatchCtxTracePropagation(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Shards: 2, ASes: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}

	ctx, client := obsv.StartTraceSpan(context.Background(), "test.client")
	resp := c.Router.BatchCtx(ctx, clusterProbes(t))
	client.End()
	if len(resp.Degradation) != 0 {
		t.Fatalf("healthy cluster degraded: %v", resp.Degradation)
	}

	traceID := client.Context().TraceID
	spans := make(map[uint64]obsv.SpanRecord) // span ID -> record, this trace only
	byName := make(map[string][]obsv.SpanRecord)
	for _, rec := range obsv.DefaultRing.Snapshot() {
		if rec.TraceID == traceID {
			spans[rec.SpanID] = rec
			byName[rec.Name] = append(byName[rec.Name], rec)
		}
	}

	if n := len(byName["router.batch"]); n != 1 {
		t.Fatalf("%d router.batch spans in trace, want 1", n)
	}
	rb := byName["router.batch"][0]
	if rb.ParentID != client.Context().SpanID {
		t.Fatalf("router.batch parent %d, want client span %d", rb.ParentID, client.Context().SpanID)
	}
	if n := len(byName["router.shard"]); n != 2 {
		t.Fatalf("%d router.shard spans in trace, want 2 (one per shard)", n)
	}
	for _, rs := range byName["router.shard"] {
		if rs.ParentID != rb.SpanID {
			t.Fatalf("router.shard parent %d, want router.batch %d", rs.ParentID, rb.SpanID)
		}
	}
	if n := len(byName["node.batch"]); n != 2 {
		t.Fatalf("%d node.batch spans in trace, want 2 — header did not propagate", n)
	}
	for _, nb := range byName["node.batch"] {
		parent, ok := spans[nb.ParentID]
		if !ok || parent.Name != "router.shard" {
			t.Fatalf("node.batch parent %d is %q, want a router.shard span", nb.ParentID, parent.Name)
		}
	}
	if n := len(byName["node.table"]); n != 2 {
		t.Fatalf("%d node.table spans in trace, want 2", n)
	}
	for _, nt := range byName["node.table"] {
		if parent, ok := spans[nt.ParentID]; !ok || parent.Name != "node.batch" {
			t.Fatalf("node.table parent %d is %q, want node.batch", nt.ParentID, parent.Name)
		}
	}
}

// TestRouterBatchCompat: the no-context wrapper still works and roots a
// fresh trace rather than inheriting someone else's.
func TestRouterBatchCompat(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Shards: 2, ASes: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp := c.Router.Batch(clusterProbes(t))
	if len(resp.Results) != len(clusterProbes(t)) {
		t.Fatalf("%d results for %d probes", len(resp.Results), len(clusterProbes(t)))
	}
}

// TestClusterMetricsFederation drives batches through the routed
// cluster and checks the /metrics/cluster page: parseable, per-shard
// labels on every member series, no duplicate series, nonzero
// cluster-wide quantiles, and the aggregator's own cluster gauges.
func TestClusterMetricsFederation(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Shards: 2, ASes: 120, Seed: 5, FederateEvery: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if resp := c.Router.Batch(clusterProbes(t)); len(resp.Degradation) != 0 {
			t.Fatalf("degraded: %v", resp.Degradation)
		}
	}

	res, err := http.Get(c.RouterBase() + "/metrics/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics/cluster = %s", res.Status)
	}
	if ct := res.Header.Get("Content-Type"); ct != obsv.PrometheusContentType {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)

	for _, want := range []string{
		`{shard="0"}`,
		`{shard="1"}`,
		"netcluster_node_batch_ns_bucket{shard=\"0\",le=",
		"netcluster_cluster_shards 2",
		"netcluster_cluster_live_shards 2",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}

	// Cluster-wide quantiles derived from merged buckets must be real
	// numbers: batches ran, so the node batch latency p99 is > 0.
	var sawP99 bool
	seen := make(map[string]bool)
	for _, line := range strings.Split(page, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("unparseable line %q", line)
		}
		id, val := line[:sp], line[sp+1:]
		if seen[id] {
			t.Fatalf("duplicate series %q", id)
		}
		seen[id] = true
		if id == "netcluster_node_batch_ns_cluster_p99" {
			sawP99 = true
			if val == "0" {
				t.Fatalf("cluster p99 is zero after %d batches", 3)
			}
		}
	}
	if !sawP99 {
		t.Fatalf("no cluster p99 series in page:\n%s", page)
	}
}

// TestRouterReadyz: ready when shards answer, degraded-but-ready with
// one down, 503 with all down or draining.
func TestRouterReadyz(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Shards: 2, ASes: 120, Seed: 5, FederateEvery: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	get := func() (int, string) {
		t.Helper()
		res, err := http.Get(c.RouterBase() + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		body, _ := io.ReadAll(res.Body)
		return res.StatusCode, string(body)
	}

	if code, body := get(); code != http.StatusOK || !strings.Contains(body, "ready shards=2/2") {
		t.Fatalf("healthy readyz = %d %q", code, body)
	}

	c.KillNode(0)
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, "degraded 1/2") {
		t.Fatalf("one-down readyz = %d %q", code, body)
	}

	c.KillNode(1)
	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, "no live shards") {
		t.Fatalf("all-down readyz = %d %q", code, body)
	}

	if err := c.ReviveNode(0); err != nil {
		t.Fatal(err)
	}
	if err := c.ReviveNode(1); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("revived readyz = %d", code)
	}

	c.Router.SetDraining(true)
	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining readyz = %d %q", code, body)
	}
	c.Router.SetDraining(false)
}

// TestFollowerLagProbe: lag gauges rise while the feed advances without
// the follower, and return to zero after catch-up — measured through
// the /feed/status probe, not a delta fetch.
func TestFollowerLagProbe(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Shards: 1, ASes: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Advance the feed 5 generations without driving the follower.
	for i := 0; i < 5; i++ {
		c.Feed.Apply(c.ChurnGen.Next())
	}
	lag, err := c.Followers[0].Lag(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if lag != 5 {
		t.Fatalf("probe lag = %d, want 5", lag)
	}
	snap := obsv.TakeSnapshot()
	if g := snap.Gauges["shard.feed.lag.generations"]; g != 5 {
		t.Fatalf("shard.feed.lag.generations = %d, want 5", g)
	}

	if err := c.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if lag, err = c.Followers[0].Lag(context.Background()); err != nil || lag != 0 {
		t.Fatalf("post-catch-up lag = %d err %v, want 0", lag, err)
	}
	if g := obsv.TakeSnapshot().Gauges["shard.feed.lag.generations"]; g != 0 {
		t.Fatalf("post-catch-up gauge = %d, want 0", g)
	}
}

// TestAggregatorFederatedSnapshot: the sink-exportable flattening
// carries per-member and merged series.
func TestAggregatorFederatedSnapshot(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Shards: 2, ASes: 120, Seed: 5, FederateEvery: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Router.Batch(clusterProbes(t))

	agg := c.Router.Aggregator()
	agg.Refresh(context.Background())
	snap := agg.FederatedSnapshot()
	if snap.Gauges["cluster.shards"] != 2 || snap.Gauges["cluster.live_shards"] != 2 {
		t.Fatalf("cluster gauges: %v", snap.Gauges)
	}
	if _, ok := snap.Counters["cluster.s0.shard.node.batches"]; !ok {
		t.Fatalf("no per-member counter in federated snapshot")
	}
	if _, ok := snap.Counters["cluster.shard.node.batches"]; !ok {
		t.Fatalf("no merged counter in federated snapshot")
	}
	if _, ok := snap.Histograms["cluster.node.batch.ns"]; !ok {
		t.Fatalf("no merged histogram in federated snapshot")
	}
}
