package shard

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
)

// clusterArtifacts dumps the flight-recorder tail when the test failed
// and CLUSTER_SMOKE_ARTIFACTS names a directory (the cluster-smoke CI
// job sets it and uploads the directory on failure).
func clusterArtifacts(t *testing.T) {
	t.Helper()
	dir := os.Getenv("CLUSTER_SMOKE_ARTIFACTS")
	if dir == "" || !t.Failed() {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	if err := obsv.WriteTraceFile(filepath.Join(dir, t.Name()+"-flight.json")); err != nil {
		t.Logf("artifacts: flight recorder: %v", err)
	}
}

// canon renders one clustering answer in the canonical comparison form.
// Shard annotations are deliberately excluded: equivalence is about the
// answers, not about who produced them.
func canon(r LookupResult) string {
	return fmt.Sprintf("%s %v %s %s gen=%d", r.Addr, r.Clustered, r.Prefix, r.Kind, r.Generation)
}

// probeSet draws n addresses, half uniform over the whole space and
// half inside the low /3 (where the synthetic world concentrates), so
// batches mix hits, misses and shard boundaries.
func probeSet(rng *rand.Rand, n int) []netutil.Addr {
	addrs := make([]netutil.Addr, n)
	for i := range addrs {
		if i%2 == 0 {
			addrs[i] = netutil.Addr(rng.Uint32())
		} else {
			addrs[i] = netutil.Addr(rng.Uint32() >> 3)
		}
	}
	return addrs
}

// routedBatch sends addrs through the router's HTTP surface.
func routedBatch(t *testing.T, base string, addrs []netutil.Addr) *RouterBatchResponse {
	t.Helper()
	var b strings.Builder
	for _, a := range addrs {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	resp, err := http.Post(base+"/cluster", "text/plain", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router POST /cluster = %s", resp.Status)
	}
	var out RouterBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// referenceBatch resolves addrs against the compiler node's full table —
// the single-node answer the cluster must reproduce byte for byte.
func referenceBatch(c *Cluster, addrs []netutil.Addr) []LookupResult {
	matches, gen := c.Reference().LookupBatch(addrs, nil)
	out := make([]LookupResult, len(addrs))
	for i, a := range addrs {
		out[i] = ResolveMatch(a, matches[i], gen)
	}
	return out
}

// TestClusterEquivalence is the tentpole proof: a 3-shard cluster
// behind the router answers byte-identically to the single full-table
// node across 100 churn generations, 10k probes per generation, while
// every node's generation advances in lockstep.
func TestClusterEquivalence(t *testing.T) {
	defer clusterArtifacts(t)
	c, err := NewCluster(ClusterConfig{Shards: 3, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const (
		generations = 100
		probes      = 10_000
	)
	rng := rand.New(rand.NewSource(42))
	for g := 1; g <= generations; g++ {
		if err := c.Step(); err != nil {
			t.Fatalf("generation %d: %v", g, err)
		}
		// Lockstep: every follower at the same generation as the feed.
		for i, f := range c.Followers {
			if got := f.Table.Generation(); got != uint64(g) {
				t.Fatalf("generation %d: shard %d at %d", g, i, got)
			}
		}
		if ref := c.Reference().Generation(); ref != uint64(g) {
			t.Fatalf("generation %d: reference at %d", g, ref)
		}

		addrs := probeSet(rng, probes)
		want := referenceBatch(c, addrs)
		got := routedBatch(t, c.RouterBase(), addrs)
		if len(got.Degradation) != 0 {
			t.Fatalf("generation %d: healthy cluster degraded: %v", g, got.Degradation)
		}
		if len(got.Results) != len(want) {
			t.Fatalf("generation %d: %d results, want %d", g, len(got.Results), len(want))
		}
		for i := range want {
			if w, g2 := canon(want[i]), canon(got.Results[i].LookupResult); w != g2 {
				t.Fatalf("generation %d probe %d: cluster %q != single-node %q", g, i, g2, w)
			}
		}
	}
}

// TestClusterKillNode kills one shard mid-churn: the batch must degrade
// to live-shard answers plus an explicit error map — never a wrong
// answer — and the revived node must catch back up into lockstep.
func TestClusterKillNode(t *testing.T) {
	defer clusterArtifacts(t)
	c, err := NewCluster(ClusterConfig{Shards: 3, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(7))
	for g := 0; g < 50; g++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	c.KillNode(1)
	for g := 0; g < 10; g++ { // the cluster keeps churning around the corpse
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}

	addrs := probeSet(rng, 2_000)
	want := referenceBatch(c, addrs)
	got := routedBatch(t, c.RouterBase(), addrs)
	if len(got.Degradation) != 1 || got.Degradation["1"] == "" {
		t.Fatalf("Degradation = %v, want exactly shard 1", got.Degradation)
	}
	live := 0
	for i, r := range got.Results {
		if r.Shard == 1 {
			if r.Error == "" || r.Clustered {
				t.Fatalf("dead-shard row %d = %+v, want error + zero answer", i, r)
			}
			continue
		}
		live++
		if w, g2 := canon(want[i]), canon(r.LookupResult); w != g2 {
			t.Fatalf("live row %d: cluster %q != single-node %q", i, g2, w)
		}
	}
	if live == 0 {
		t.Fatal("no live-shard rows in the probe set")
	}

	// Revival: the follower was not driven while dead, so it re-enters
	// through catch-up and the whole cluster must be equivalent again.
	if err := c.ReviveNode(1); err != nil {
		t.Fatal(err)
	}
	want = referenceBatch(c, addrs)
	got = routedBatch(t, c.RouterBase(), addrs)
	if len(got.Degradation) != 0 {
		t.Fatalf("revived cluster still degraded: %v", got.Degradation)
	}
	for i := range want {
		if w, g2 := canon(want[i]), canon(got.Results[i].LookupResult); w != g2 {
			t.Fatalf("post-revival row %d: cluster %q != single-node %q", i, g2, w)
		}
	}
}

// TestClusterWarmStartJoin covers the two late-join paths: a node
// joining mid-stream from the snapshot endpoint, and a clusterd-style
// warm start from a saved .nct + sidecar that then follows the feed.
func TestClusterWarmStartJoin(t *testing.T) {
	defer clusterArtifacts(t)
	c, err := NewCluster(ClusterConfig{Shards: 2, MaxLog: 16, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for g := 0; g < 30; g++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}

	// Late joiner: snapshot catch-up must land it exactly at the head.
	fl, err := Join(c.FeedBase(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Seq() != c.Feed.Head() || fl.Table.Generation() != c.Reference().Generation() {
		t.Fatalf("joiner at seq %d gen %d, feed head %d", fl.Seq(), fl.Table.Generation(), c.Feed.Head())
	}

	// Warm start from disk: save the joiner's table + sidecar, reload it,
	// then follow the live feed across a retention-window gap (MaxLog 16
	// vs 20 published deltas) to force the 410 → resync path too.
	dir := t.TempDir()
	path := filepath.Join(dir, "warm.nct")
	if err := bgp.SaveTable(path, fl.Table.Load()); err != nil {
		t.Fatal(err)
	}
	if err := bgp.SaveTableMeta(path, bgp.TableMeta{Generation: fl.Table.Generation(), Seq: fl.Seq()}); err != nil {
		t.Fatal(err)
	}

	for g := 0; g < 20; g++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}

	tf, err := bgp.OpenTable(path)
	if err != nil {
		t.Fatal(err)
	}
	meta, ok, err := bgp.LoadTableMeta(path)
	if err != nil || !ok {
		t.Fatalf("sidecar = %v, %v", ok, err)
	}
	warm := RejoinFromSnapshot(c.FeedBase(), nil, tf.Table(), meta, nil)
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	for {
		n, err := warm.Step(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 && warm.Seq() == c.Feed.Head() {
			break
		}
	}
	if warm.Table.Generation() != c.Reference().Generation() {
		t.Fatalf("warm-started node at gen %d, reference at %d", warm.Table.Generation(), c.Reference().Generation())
	}

	// Same answers as the reference over a probe sweep.
	rng := rand.New(rand.NewSource(11))
	addrs := probeSet(rng, 2_000)
	wantM, wantGen := c.Reference().LookupBatch(addrs, nil)
	gotM, gotGen := warm.Table.LookupBatch(addrs, nil)
	if wantGen != gotGen {
		t.Fatalf("generation %d != %d", gotGen, wantGen)
	}
	for i := range addrs {
		if wantM[i] != gotM[i] {
			t.Fatalf("probe %s: warm %+v != reference %+v", addrs[i], gotM[i], wantM[i])
		}
	}
}
