package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/churn"
	"github.com/netaware/netcluster/internal/obsv"
)

var (
	feedPublished = obsv.C("shard.feed.published")
	feedOps       = obsv.C("shard.feed.ops")
	feedFetches   = obsv.C("shard.feed.fetches")
	feedGone      = obsv.C("shard.feed.gone")
	feedSnapshots = obsv.C("shard.feed.snapshots")
	feedHead      = obsv.G("shard.feed.head")
)

// Feed endpoint paths, mounted under the compiler node's mux.
const (
	DeltasPath   = "/feed/deltas"
	SnapshotPath = "/feed/snapshot"
	StatusPath   = "/feed/status"
)

// SeqHeader carries a snapshot's feed position on the catch-up response.
const SeqHeader = "X-Netcluster-Seq"

// DefaultMaxLog is how many sequenced deltas the feed retains for
// catch-up; a follower further behind than this re-joins from a
// snapshot (410 Gone on the delta fetch).
const DefaultMaxLog = 4096

// maxFetch caps how many deltas one GET /feed/deltas returns.
const maxFetch = 512

// SeqDelta is one retained log record.
type SeqDelta struct {
	Seq   uint64
	Delta bgp.Delta
}

// Feed is the elected compiler node's side of delta distribution: it
// owns the authoritative churn table, assigns each applied delta the
// next sequence number (sequence == table generation, so "in lockstep"
// is checkable on both ends), retains a bounded log for catch-up, and
// serves the stream plus join snapshots over HTTP.
//
// Election is by configuration (exactly one clusterd runs -feed-serve),
// the same simplification the PBFT-style harnesses in the related work
// make: the interesting failure modes — lagging followers, partitioned
// fetches, nodes joining mid-stream — live downstream of the compiler.
type Feed struct {
	table *churn.Table

	mu   sync.Mutex
	head uint64     // last published sequence number
	log  []SeqDelta // tail of the stream: log[len-1].Seq == head
	max  int

	// One-deep snapshot cache: marshaling a big table is the expensive
	// part of a join, and every joiner between two publishes sees the
	// same bytes.
	snapSeq   uint64
	snapBytes []byte
}

// NewFeed wraps the authoritative table. maxLog <= 0 selects
// DefaultMaxLog. The feed's sequence numbering continues from the
// table's current generation, so a warm-started compiler resumes its
// stream where the snapshot's sidecar says it stopped.
func NewFeed(t *churn.Table, maxLog int) *Feed {
	if maxLog <= 0 {
		maxLog = DefaultMaxLog
	}
	f := &Feed{table: t, head: t.Generation(), max: maxLog}
	feedHead.Set(int64(f.head))
	return f
}

// Table returns the authoritative table behind the feed.
func (f *Feed) Table() *churn.Table { return f.table }

// Head returns the last published sequence number.
func (f *Feed) Head() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.head
}

// Apply publishes one delta: applies it to the authoritative table,
// assigns it the next sequence number (== the new table generation) and
// appends it to the retained log. Single-publisher, like the table's
// write side; the HTTP read side is fully concurrent.
func (f *Feed) Apply(d bgp.Delta) (churn.SwapStats, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.table.Apply(d)
	f.head = st.Generation
	f.log = append(f.log, SeqDelta{Seq: st.Generation, Delta: d})
	if len(f.log) > f.max {
		f.log = append(f.log[:0:0], f.log[len(f.log)-f.max:]...)
	}
	feedPublished.Inc()
	feedOps.Add(uint64(len(d.Ops)))
	feedHead.Set(int64(f.head))
	return st, f.head
}

// tail returns the retained deltas in (from, from+limit], or ok=false
// when from has fallen off the log (the caller answers 410 Gone).
func (f *Feed) tail(from uint64, limit int) (ds []SeqDelta, head uint64, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from > f.head {
		// A follower ahead of the feed can only mean a stream restart
		// (compiler rebooted without its sidecar); force a re-join.
		return nil, f.head, false
	}
	oldest := f.head - uint64(len(f.log)) // seq before the first retained
	if from < oldest {
		return nil, f.head, false
	}
	start := int(from - oldest) // index of the first delta to return
	end := start + limit
	if end > len(f.log) {
		end = len(f.log)
	}
	return f.log[start:end], f.head, true
}

// Snapshot marshals the authoritative table at its current position,
// returning the bytes and the sequence number they capture. The pair is
// consistent: publication and snapshotting serialize on the feed mutex.
func (f *Feed) Snapshot() ([]byte, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.snapBytes != nil && f.snapSeq == f.head {
		return f.snapBytes, f.snapSeq, nil
	}
	data, err := bgp.MarshalTable(f.table.Load())
	if err != nil {
		return nil, 0, err
	}
	f.snapBytes, f.snapSeq = data, f.head
	feedSnapshots.Inc()
	return data, f.head, nil
}

// Handler serves the feed protocol:
//
//	GET /feed/deltas?from=N[&max=K]  deltas in (N, N+K], JSON; 410 Gone
//	                                 when N has fallen off the log
//	GET /feed/snapshot               table snapshot bytes at the stream
//	                                 head, X-Netcluster-Seq: position
//	GET /feed/status                 head + retained-log extent, JSON
func (f *Feed) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(DeltasPath, f.handleDeltas)
	mux.HandleFunc(SnapshotPath, f.handleSnapshot)
	mux.HandleFunc(StatusPath, f.handleStatus)
	return mux
}

func (f *Feed) handleDeltas(w http.ResponseWriter, r *http.Request) {
	feedFetches.Inc()
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad from: %v", err), http.StatusBadRequest)
		return
	}
	limit := maxFetch
	if ms := r.URL.Query().Get("max"); ms != "" {
		m, err := strconv.Atoi(ms)
		if err != nil || m < 1 {
			http.Error(w, fmt.Sprintf("bad max %q", ms), http.StatusBadRequest)
			return
		}
		if m < limit {
			limit = m
		}
	}
	ds, head, ok := f.tail(from, limit)
	if !ok {
		feedGone.Inc()
		w.Header().Set(SeqHeader, strconv.FormatUint(head, 10))
		http.Error(w, fmt.Sprintf("seq %d no longer retained (head %d): re-join from %s", from, head, SnapshotPath),
			http.StatusGone)
		return
	}
	resp := DeltaResponse{Head: head, Deltas: make([]WireDelta, len(ds))}
	for i, sd := range ds {
		resp.Deltas[i] = EncodeDelta(sd.Seq, sd.Delta)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (f *Feed) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	data, seq, err := f.Snapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(SeqHeader, strconv.FormatUint(seq, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

func (f *Feed) handleStatus(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	head, logged := f.head, len(f.log)
	f.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Head     uint64 `json:"head"`
		Retained int    `json:"retained"`
		Oldest   uint64 `json:"oldest_retained,omitempty"`
	}{head, logged, head - uint64(logged) + 1})
}
