package shard

import (
	"context"
	"net/http/httptest"
	"testing"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/churn"
	"github.com/netaware/netcluster/internal/netutil"
)

// feedWorld builds a small authoritative table for feed tests.
func feedWorld() *churn.Table {
	m := bgp.NewMerged()
	m.Add(&bgp.Snapshot{Name: "AADS", Kind: bgp.SourceBGP, Entries: []bgp.Entry{
		{Prefix: netutil.MustParsePrefix("10.0.0.0/8")},
		{Prefix: netutil.MustParsePrefix("200.0.0.0/8")},
	}})
	return churn.New(m)
}

func announce(p string) bgp.Delta {
	return bgp.Delta{Source: "test", Ops: []bgp.Op{
		{Kind: bgp.SourceBGP, Entry: bgp.Entry{Prefix: netutil.MustParsePrefix(p)}},
	}}
}

func TestFeedSequenceTracksGeneration(t *testing.T) {
	f := NewFeed(feedWorld(), 0)
	if f.Head() != 0 {
		t.Fatalf("fresh feed head = %d", f.Head())
	}
	for i := 1; i <= 5; i++ {
		st, seq := f.Apply(announce("10.1.0.0/16"))
		if st.Generation != uint64(i) || seq != uint64(i) {
			t.Fatalf("apply %d: generation %d, seq %d", i, st.Generation, seq)
		}
	}
	if f.Table().Generation() != 5 || f.Head() != 5 {
		t.Fatalf("after 5 applies: table gen %d, head %d", f.Table().Generation(), f.Head())
	}
}

func TestFollowerLockstep(t *testing.T) {
	feed := NewFeed(feedWorld(), 0)
	srv := httptest.NewServer(feed.Handler())
	defer srv.Close()

	fl, err := Join(srv.URL, srv.Client(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Seq() != 0 || fl.Table.Generation() != 0 {
		t.Fatalf("join: seq %d, gen %d", fl.Seq(), fl.Table.Generation())
	}

	for i := 0; i < 7; i++ {
		feed.Apply(announce("10.2.0.0/16"))
	}
	n, err := fl.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 || fl.Seq() != 7 || fl.Table.Generation() != 7 {
		t.Fatalf("step applied %d, seq %d, gen %d; want 7 everywhere", n, fl.Seq(), fl.Table.Generation())
	}
	if m, ok := fl.Table.Lookup(netutil.MustParseAddr("10.2.3.4")); !ok || m.Prefix.String() != "10.2.0.0/16" {
		t.Fatalf("follower table missing streamed prefix: %+v %v", m, ok)
	}
	// Caught up: the next step is a no-op.
	if n, err := fl.Step(context.Background()); err != nil || n != 0 {
		t.Fatalf("caught-up step = %d, %v", n, err)
	}
}

func TestFollowerFilteredLockstep(t *testing.T) {
	feed := NewFeed(feedWorld(), 0)
	srv := httptest.NewServer(feed.Handler())
	defer srv.Close()

	m := NewMap(2) // shard 1 owns blocks 128..255
	fl, err := Join(srv.URL, srv.Client(), m.Keep(1))
	if err != nil {
		t.Fatal(err)
	}

	feed.Apply(announce("10.3.0.0/16"))  // filtered out for shard 1
	feed.Apply(announce("200.3.0.0/16")) // kept
	if _, err := fl.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Both deltas advance the generation — lockstep — but only the owned
	// prefix lands in the table.
	if fl.Table.Generation() != 2 {
		t.Fatalf("filtered follower gen = %d, want 2", fl.Table.Generation())
	}
	if _, ok := fl.Table.Lookup(netutil.MustParseAddr("10.3.1.1")); ok {
		t.Fatal("filtered-out prefix matched on the shard")
	}
	if m, ok := fl.Table.Lookup(netutil.MustParseAddr("200.3.1.1")); !ok || m.Prefix.String() != "200.3.0.0/16" {
		t.Fatalf("owned prefix missing: %+v %v", m, ok)
	}
}

func TestFeedCatchUpFromSnapshotAfterLogTrim(t *testing.T) {
	feed := NewFeed(feedWorld(), 4) // tiny retained log
	srv := httptest.NewServer(feed.Handler())
	defer srv.Close()

	fl, err := Join(srv.URL, srv.Client(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Publish far past the retention window while the follower sleeps.
	for i := 0; i < 20; i++ {
		feed.Apply(announce("10.4.0.0/16"))
	}
	// First step hits 410 Gone and resyncs from the snapshot.
	if _, err := fl.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fl.Seq() != 20 || fl.Table.Generation() != 20 {
		t.Fatalf("after resync: seq %d, gen %d, want 20", fl.Seq(), fl.Table.Generation())
	}
	if m, ok := fl.Table.Lookup(netutil.MustParseAddr("10.4.0.1")); !ok || m.Prefix.String() != "10.4.0.0/16" {
		t.Fatalf("resynced table wrong: %+v %v", m, ok)
	}
}

func TestFeedSnapshotSeqConsistent(t *testing.T) {
	feed := NewFeed(feedWorld(), 0)
	feed.Apply(announce("10.5.0.0/16"))

	data, seq, err := feed.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("snapshot seq = %d, want 1", seq)
	}
	c, err := bgp.ReadTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := c.Lookup(netutil.MustParseAddr("10.5.0.1")); !ok || m.Prefix.String() != "10.5.0.0/16" {
		t.Fatalf("snapshot at seq 1 missing delta 1: %+v %v", m, ok)
	}
	// Cache: same head, same bytes.
	data2, seq2, _ := feed.Snapshot()
	if seq2 != seq || &data[0] != &data2[0] {
		t.Fatal("snapshot at an unchanged head was re-marshaled")
	}
	// New publish invalidates.
	feed.Apply(announce("10.6.0.0/16"))
	_, seq3, _ := feed.Snapshot()
	if seq3 != 2 {
		t.Fatalf("snapshot after publish = seq %d, want 2", seq3)
	}
}

func TestFeedDeltasHTTPValidation(t *testing.T) {
	feed := NewFeed(feedWorld(), 0)
	feed.Apply(announce("10.7.0.0/16"))
	srv := httptest.NewServer(feed.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		url  string
		code int
	}{
		{DeltasPath, 400},             // missing from
		{DeltasPath + "?from=x", 400}, // bad from
		{DeltasPath + "?from=0&max=0", 400},
		{DeltasPath + "?from=9", 410}, // ahead of head: stream restart, re-join
		{DeltasPath + "?from=0", 200},
		{DeltasPath + "?from=1", 200}, // caught up: empty delta list
		{SnapshotPath, 200},
		{StatusPath, 200},
	} {
		resp, err := srv.Client().Get(srv.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("GET %s = %d, want %d", tc.url, resp.StatusCode, tc.code)
		}
	}
}
