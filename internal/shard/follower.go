package shard

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/churn"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
)

var (
	followerApplied  = obsv.C("shard.follower.applied")
	followerFiltered = obsv.C("shard.follower.filtered_ops")
	followerResyncs  = obsv.C("shard.follower.resyncs")
	followerErrors   = obsv.C("shard.follower.errors")
	followerLag      = obsv.G("shard.follower.lag")

	// feedLagGens is the SLO form of follower lag: generations between
	// the feed's head and this follower's table, as measured against
	// /feed/status. Unlike shard.follower.lag (updated only when a delta
	// fetch succeeds), the Lag probe keeps this gauge honest while the
	// follower is stuck, which is exactly when an operator needs it.
	feedLagGens = obsv.G("shard.feed.lag.generations")
)

// DefaultPollEvery is the follower's delta-fetch cadence when the
// caller doesn't set one.
const DefaultPollEvery = 200 * time.Millisecond

// Follower tails a Feed over HTTP and keeps a local churn.Table in
// lockstep: every published delta advances the local generation by
// exactly one, filtered down to the shard's owned range when Keep is
// set, so generation N here answers byte-identically (over owned
// addresses) to generation N on the compiler node.
type Follower struct {
	Base   string                           // feed base URL, e.g. "http://127.0.0.1:9090"
	Client *http.Client                     // nil = http.DefaultClient
	Table  *churn.Table                     // local table; seeded by Join
	Keep   func(netutil.Prefix) bool        // nil = keep everything
	Logf   func(format string, args ...any) // nil = silent

	PollEvery time.Duration // Run's fetch cadence; 0 = DefaultPollEvery
	MaxFetch  int           // per-fetch delta cap; 0 = server default

	// MonitorEvery is Run's lag-probe cadence: how often a background
	// Lag call measures this follower against the feed's /feed/status
	// head. 0 disables the monitor (Step still updates the gauges on
	// every successful fetch).
	MonitorEvery time.Duration

	seq atomic.Uint64 // last applied sequence number
}

// Join seeds a follower from the feed's snapshot endpoint: it downloads
// the catch-up snapshot, warm-starts a churn table at the snapshot's
// stream position (filtered to keep's range), and returns a Follower
// ready to Step.
func Join(base string, client *http.Client, keep func(netutil.Prefix) bool) (*Follower, error) {
	f := &Follower{Base: base, Client: client, Keep: keep}
	if err := f.resync(); err != nil {
		return nil, err
	}
	return f, nil
}

// RejoinFromSnapshot builds a follower warm-started from a saved table
// snapshot instead of the feed's snapshot endpoint: c is the loaded
// .nct table and meta its sidecar position. The follower resumes the
// stream at meta.Seq; if that has already fallen off the feed's
// retained log, the first Step resyncs from the live snapshot — so a
// stale snapshot costs one extra download, never a wrong table.
func RejoinFromSnapshot(base string, client *http.Client, c *bgp.Compiled, meta bgp.TableMeta, keep func(netutil.Prefix) bool) *Follower {
	f := &Follower{
		Base:   base,
		Client: client,
		Keep:   keep,
		Table:  churn.NewFromCompiled(c, keep, meta.Generation),
	}
	f.seq.Store(meta.Seq)
	return f
}

// Seq returns the last applied sequence number.
func (f *Follower) Seq() uint64 { return f.seq.Load() }

func (f *Follower) client() *http.Client {
	if f.Client != nil {
		return f.Client
	}
	return http.DefaultClient
}

func (f *Follower) logf(format string, args ...any) {
	if f.Logf != nil {
		f.Logf(format, args...)
	}
}

// resync (re)seeds the local table from the feed snapshot — the join
// path, and the recovery path when the follower has fallen off the
// feed's retained log (410 Gone).
func (f *Follower) resync() error {
	resp, err := f.client().Get(f.Base + SnapshotPath)
	if err != nil {
		return fmt.Errorf("feed snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("feed snapshot: %s", resp.Status)
	}
	seq, err := strconv.ParseUint(resp.Header.Get(SeqHeader), 10, 64)
	if err != nil {
		return fmt.Errorf("feed snapshot: bad %s header: %w", SeqHeader, err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("feed snapshot: %w", err)
	}
	c, err := bgp.ReadTable(data)
	if err != nil {
		return fmt.Errorf("feed snapshot: %w", err)
	}
	if f.Table == nil {
		f.Table = churn.NewFromCompiled(c, f.Keep, seq)
	} else {
		f.Table.Reseed(c, f.Keep, seq)
		followerResyncs.Inc()
	}
	f.seq.Store(seq)
	// The snapshot is the stream head (or close to it); report caught up
	// until the next fetch or probe measures the real distance.
	followerLag.Set(0)
	feedLagGens.Set(0)
	f.logf("shard follower: seeded from snapshot at seq %d", seq)
	return nil
}

// Step fetches and applies one round of deltas, returning how many it
// applied. A 410 Gone (fallen off the retained log) triggers an
// automatic snapshot resync; a sequence gap inside a response — which a
// correct feed never produces — is treated the same way rather than
// leaving the table silently diverged. Zero applied with nil error
// means caught up.
func (f *Follower) Step(ctx context.Context) (int, error) {
	url := fmt.Sprintf("%s%s?from=%d", f.Base, DeltasPath, f.seq.Load())
	if f.MaxFetch > 0 {
		url += fmt.Sprintf("&max=%d", f.MaxFetch)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.client().Do(req)
	if err != nil {
		followerErrors.Inc()
		return 0, fmt.Errorf("feed deltas: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body)
		f.logf("shard follower: seq %d fell off the feed log, resyncing", f.seq.Load())
		return 0, f.resync()
	default:
		followerErrors.Inc()
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("feed deltas: %s", resp.Status)
	}
	var dr DeltaResponse
	if err := decodeJSONBody(resp.Body, &dr); err != nil {
		followerErrors.Inc()
		return 0, fmt.Errorf("feed deltas: %w", err)
	}
	applied := 0
	for _, wd := range dr.Deltas {
		if wd.Seq != f.seq.Load()+1 {
			f.logf("shard follower: sequence gap (have %d, got %d), resyncing", f.seq.Load(), wd.Seq)
			return applied, f.resync()
		}
		d, err := DecodeDelta(wd)
		if err != nil {
			followerErrors.Inc()
			return applied, err
		}
		kept := d
		if f.Keep != nil {
			kept = FilterDelta(f.Keep, d)
			followerFiltered.Add(uint64(len(d.Ops) - len(kept.Ops)))
		}
		st := f.Table.Apply(kept)
		if st.Generation != wd.Seq {
			// Lockstep broken locally (a table this follower doesn't own
			// the write side of); resync rather than drift.
			f.logf("shard follower: generation %d != seq %d, resyncing", st.Generation, wd.Seq)
			return applied, f.resync()
		}
		f.seq.Store(wd.Seq)
		applied++
		followerApplied.Inc()
	}
	lag := int64(dr.Head - f.seq.Load())
	followerLag.Set(lag)
	feedLagGens.Set(lag)
	return applied, nil
}

// Lag measures this follower's generation lag against the feed's
// /feed/status head without fetching or applying anything, and updates
// the lag gauges. It is safe to call concurrently with Step/Run — this
// is the probe Run's lag monitor drives, so a follower wedged behind a
// paused or partitioned feed still reports its true, growing distance.
func (f *Follower) Lag(ctx context.Context) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.Base+StatusPath, nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.client().Do(req)
	if err != nil {
		return 0, fmt.Errorf("feed status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("feed status: %s", resp.Status)
	}
	var st struct {
		Head uint64 `json:"head"`
	}
	if err := decodeJSONBody(resp.Body, &st); err != nil {
		return 0, fmt.Errorf("feed status: %w", err)
	}
	var lag uint64
	if seq := f.seq.Load(); st.Head > seq {
		lag = st.Head - seq
	}
	followerLag.Set(int64(lag))
	feedLagGens.Set(int64(lag))
	return lag, nil
}

// Run polls the feed until ctx is done, resyncing through transient
// errors. Fetch errors are logged and retried on the next tick —
// partitions heal; a follower that exits on the first dropped
// connection doesn't. When MonitorEvery is set, a background probe
// additionally measures lag against /feed/status on that cadence, so
// the lag gauges keep moving even while delta fetches stall.
func (f *Follower) Run(ctx context.Context) {
	every := f.PollEvery
	if every <= 0 {
		every = DefaultPollEvery
	}
	if f.MonitorEvery > 0 {
		go func() {
			tick := time.NewTicker(f.MonitorEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				if _, err := f.Lag(ctx); err != nil && ctx.Err() == nil {
					f.logf("shard follower: lag probe: %v", err)
				}
			}
		}()
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		// Drain until caught up so one slow tick doesn't leave a burst
		// half-applied behind a caught-up generation label.
		for {
			n, err := f.Step(ctx)
			if err != nil {
				if ctx.Err() == nil {
					f.logf("shard follower: %v", err)
				}
				break
			}
			if n == 0 {
				break
			}
		}
	}
}
