package shard

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/churn"
	"github.com/netaware/netcluster/internal/inet"
)

// ClusterConfig sizes an in-process Cluster.
type ClusterConfig struct {
	Shards     int     // shard node count; 0 = 3
	ASes       int     // synthetic world size; 0 = 300
	Seed       int64   // world + churn seed; 0 = 1
	MeanBatch  int     // mean churn ops per delta; 0 = 32
	Burstiness float64 // churn burst probability
	MaxLog     int     // feed retention; 0 = DefaultMaxLog
	Logf       func(format string, args ...any)

	// FederateEvery is the router aggregator's staleness bound
	// (RouterConfig.FederateEvery); tests set it tiny so every
	// /metrics/cluster scrape pulls fresh shard snapshots.
	FederateEvery time.Duration
}

// Cluster is a whole sharded deployment in one process: a compiler node
// (full table + Feed) over a seeded synthetic world, N shard followers
// each seeded from the feed snapshot and filtered to its range, one
// NodeServer per follower on a real loopback listener, and a Router
// fronting them. It lives in a non-test file so the root benchmark
// suite and the shard tests share it.
//
// The harness drives churn synchronously — Step publishes one delta and
// walks every live follower to the new head — so tests get lockstep
// determinism; production followers poll instead (Follower.Run).
type Cluster struct {
	Map       *Map
	Feed      *Feed
	ChurnGen  *bgpsim.ChurnGen
	Router    *Router
	Followers []*Follower

	feedSrv   *serverHandle
	nodeSrvs  []*serverHandle
	routerSrv *serverHandle
	dead      []bool
	logf      func(format string, args ...any)
}

type serverHandle struct {
	ln   net.Listener
	srv  *http.Server
	base string
}

func startServer(h http.Handler) (*serverHandle, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sh := &serverHandle{ln: ln, srv: &http.Server{Handler: h}, base: "http://" + ln.Addr().String()}
	go sh.srv.Serve(ln)
	return sh, nil
}

func (sh *serverHandle) close() {
	if sh != nil {
		sh.srv.Close()
	}
}

// NewCluster builds and starts the whole deployment. Callers must Close
// it.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.ASes <= 0 {
		cfg.ASes = 300
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MeanBatch <= 0 {
		cfg.MeanBatch = 32
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Compiler node: full table over the synthetic world, same
	// construction as clusterd's default boot.
	wcfg := inet.DefaultConfig()
	wcfg.NumASes = cfg.ASes
	wcfg.Seed = cfg.Seed
	world, err := inet.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	scfg := bgpsim.DefaultConfig()
	scfg.Seed = cfg.Seed
	coll := bgpsim.New(world, scfg).Collect()
	table := churn.New(bgpsim.Merge(coll))

	universe := &bgp.Snapshot{Name: "churn-universe", Kind: bgp.SourceBGP}
	for _, v := range coll.Views {
		universe.Entries = append(universe.Entries, v.Entries...)
	}
	ccfg := bgpsim.DefaultChurnConfig()
	ccfg.Seed = cfg.Seed
	ccfg.MeanBatch = cfg.MeanBatch
	if cfg.Burstiness > 0 {
		ccfg.Burstiness = cfg.Burstiness
	}

	c := &Cluster{
		Map:      NewMap(cfg.Shards),
		Feed:     NewFeed(table, cfg.MaxLog),
		ChurnGen: bgpsim.NewChurnGen(universe, ccfg),
		dead:     make([]bool, cfg.Shards),
		logf:     logf,
	}

	c.feedSrv, err = startServer(c.Feed.Handler())
	if err != nil {
		return nil, err
	}

	// Shard nodes: join from the feed snapshot, filtered to their range.
	for i := 0; i < cfg.Shards; i++ {
		f, err := Join(c.feedSrv.base, nil, c.Map.Keep(i))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("shard %d join: %w", i, err)
		}
		f.Logf = logf
		c.Followers = append(c.Followers, f)
		sh, err := startServer((&NodeServer{Table: f.Table, ShardID: i}).Handler())
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodeSrvs = append(c.nodeSrvs, sh)
		c.Map.Shards[i].Addr = sh.base
	}

	c.Router, err = NewRouter(RouterConfig{Map: c.Map, FederateEvery: cfg.FederateEvery})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.routerSrv, err = startServer(c.Router.Handler())
	if err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Reference returns the compiler node's full table — the single-node
// equivalence oracle.
func (c *Cluster) Reference() *churn.Table { return c.Feed.Table() }

// FeedBase returns the compiler node's base URL.
func (c *Cluster) FeedBase() string { return c.feedSrv.base }

// RouterBase returns the router's base URL.
func (c *Cluster) RouterBase() string { return c.routerSrv.base }

// NodeBase returns shard i's base URL.
func (c *Cluster) NodeBase(i int) string { return c.nodeSrvs[i].base }

// Step publishes one churn delta and drives every live follower until
// it has caught up, so on return all live tables are at the same
// generation as the reference.
func (c *Cluster) Step() error {
	d := c.ChurnGen.Next()
	c.Feed.Apply(d)
	return c.CatchUp()
}

// CatchUp drives every live follower to the feed head without
// publishing anything new.
func (c *Cluster) CatchUp() error {
	ctx := context.Background()
	for i, f := range c.Followers {
		if c.dead[i] {
			continue
		}
		for {
			n, err := f.Step(ctx)
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			if n == 0 && f.Seq() == c.Feed.Head() {
				break
			}
		}
	}
	return nil
}

// KillNode shuts shard i's HTTP server down and stops driving its
// follower — from the router's point of view the node is gone
// mid-deployment.
func (c *Cluster) KillNode(i int) {
	if !c.dead[i] {
		c.dead[i] = true
		c.nodeSrvs[i].close()
		c.logf("cluster harness: killed shard node %d (%s)", i, c.nodeSrvs[i].base)
	}
}

// ReviveNode restarts a killed shard i on a fresh port: its follower
// re-joins the stream (catching up through Step's resync path if it
// fell off the log) and the shard map is updated in place, which the
// router observes on its next batch.
func (c *Cluster) ReviveNode(i int) error {
	if !c.dead[i] {
		return nil
	}
	sh, err := startServer((&NodeServer{Table: c.Followers[i].Table, ShardID: i}).Handler())
	if err != nil {
		return err
	}
	c.nodeSrvs[i] = sh
	c.Map.Shards[i].Addr = sh.base
	c.dead[i] = false
	c.logf("cluster harness: revived shard node %d at %s", i, sh.base)
	return c.CatchUp()
}

// Close shuts every server down.
func (c *Cluster) Close() {
	c.routerSrv.close()
	for _, sh := range c.nodeSrvs {
		sh.close()
	}
	c.feedSrv.close()
}
