package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
)

var (
	nodeBatches = obsv.C("shard.node.batches")
	nodeAddrs   = obsv.C("shard.node.addrs")
)

// DefaultMaxBatch caps addresses per /cluster batch on a shard node,
// matching clusterd's -max-batch default.
const DefaultMaxBatch = 100000

// NodeServer serves one shard's slice of the clustering service over
// the clusterd wire format: GET /lookup, POST /cluster (newline-
// separated addresses), GET /healthz. It is the minimal single-table
// server the harness and the router tests stand up in-process; the
// production equivalent is a full clusterd running with -feed and
// -shard-index.
type NodeServer struct {
	Table    TableSource
	MaxBatch int // 0 = DefaultMaxBatch
	ShardID  int // annotates this node's trace spans with its shard index
}

// TableSource is the read surface a node serves from — *churn.Table
// satisfies it.
type TableSource interface {
	Lookup(netutil.Addr) (bgp.Match, bool)
	LookupBatch([]netutil.Addr, []bgp.Match) ([]bgp.Match, uint64)
	Generation() uint64
}

// Handler returns the node's mux. /metrics.json serves the process
// registry snapshot — what a router-side Aggregator federates.
func (n *NodeServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lookup", n.handleLookup)
	mux.HandleFunc("/cluster", n.handleBatch)
	mux.HandleFunc("/healthz", n.handleHealthz)
	mux.Handle(MetricsSnapshotPath, obsv.SnapshotHandler())
	return mux
}

func (n *NodeServer) handleLookup(w http.ResponseWriter, r *http.Request) {
	_, span := obsv.StartTraceSpan(obsv.HTTPExtract(r.Context(), r.Header), "node.lookup")
	span.SetAttrInt("shard", int64(n.ShardID))
	defer span.End()
	q := r.URL.Query().Get("addr")
	addr, err := netutil.ParseAddr(q)
	if err != nil {
		span.Fail(err)
		http.Error(w, fmt.Sprintf("bad addr %q: %v", q, err), http.StatusBadRequest)
		return
	}
	gen := n.Table.Generation()
	m, _ := n.Table.Lookup(addr)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ResolveMatch(addr, m, gen))
}

func (n *NodeServer) handleBatch(w http.ResponseWriter, r *http.Request) {
	ctx, span := obsv.StartTraceSpan(obsv.HTTPExtract(r.Context(), r.Header), "node.batch")
	span.SetAttrInt("shard", int64(n.ShardID))
	defer span.End()
	if r.Method != http.MethodPost {
		http.Error(w, "POST an address list", http.StatusMethodNotAllowed)
		return
	}
	maxBatch := n.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	addrs, err := ParseAddrList(r.Body, maxBatch)
	if err != nil {
		span.Fail(err)
		status := http.StatusBadRequest
		if err == errBatchTooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	span.SetAttrInt("addrs", int64(len(addrs)))
	_, lspan := obsv.StartTraceSpan(ctx, "node.table")
	matches, gen := n.Table.LookupBatch(addrs, nil)
	lspan.End()
	resp := BatchResponse{Generation: gen, Results: make([]LookupResult, len(addrs))}
	for i, a := range addrs {
		resp.Results[i] = ResolveMatch(a, matches[i], gen)
	}
	nodeBatches.Inc()
	nodeAddrs.Add(uint64(len(addrs)))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (n *NodeServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintf(w, "ok gen=%d\n", n.Table.Generation())
}

var errBatchTooLarge = fmt.Errorf("batch exceeds limit")

// ParseAddrList reads a newline-separated address list (the /cluster
// request body format), skipping blank lines, erroring on the first
// unparsable line or past max addresses.
func ParseAddrList(r io.Reader, max int) ([]netutil.Addr, error) {
	sc := bufio.NewScanner(r)
	addrs := make([]netutil.Addr, 0, 256)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if len(addrs) >= max {
			return nil, errBatchTooLarge
		}
		addr, err := netutil.ParseAddr(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad addr %q", len(addrs)+1, line)
		}
		addrs = append(addrs, addr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return addrs, nil
}

// decodeJSONBody strictly decodes one JSON value from r.
func decodeJSONBody(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}
