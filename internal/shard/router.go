package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
)

var (
	routerBatches   = obsv.C("shard.router.batches")
	routerAddrs     = obsv.C("shard.router.addrs")
	routerShardErrs = obsv.C("shard.router.shard_errors")
	routerDegraded  = obsv.C("shard.router.degraded_batches")
	routerFanoutNS  = obsv.H("shard.router.fanout.ns")
)

// DefaultRouterTimeout bounds one shard's portion of a routed batch.
const DefaultRouterTimeout = 5 * time.Second

// RouterConfig configures a Router.
type RouterConfig struct {
	Map      *Map          // validated shard map with Addr filled in
	Client   *http.Client  // nil = http.DefaultClient
	Timeout  time.Duration // per-shard request budget; 0 = DefaultRouterTimeout
	MaxBatch int           // addresses per routed batch; 0 = DefaultMaxBatch

	// FederateEvery bounds how stale the metrics aggregator behind
	// /metrics/cluster and /readyz may get before a request triggers a
	// fresh pull of the shards' snapshots; 0 = DefaultFederateEvery.
	FederateEvery time.Duration
}

// Router fans batch clustering requests out across the shard map and
// merges the answers back into input order. Failure is partial by
// design: a dead shard costs only its own rows, which come back with an
// Error annotation, and the batch as a whole reports the outage in the
// Degradation map instead of failing. That inverts the single-node
// contract — where any error failed the whole batch — because in a
// cluster the common failure is one node, not all of them.
type Router struct {
	cfg      RouterConfig
	agg      *Aggregator
	stats    []shardStat
	draining atomic.Bool
}

// shardStat is one shard's router-side SLO accounting: its slice of
// every fan-out timed into a histogram, requests/errors counted, and
// the running error rate as a basis-point gauge — the per-shard view
// that tells a flapping node from a slow one.
type shardStat struct {
	ns       *obsv.Histogram
	requests *obsv.Counter
	errors   *obsv.Counter
	errorBP  *obsv.Gauge // errors per 10,000 requests
}

func (st *shardStat) record(d time.Duration, failed bool) {
	st.ns.Observe(d.Nanoseconds())
	n := st.requests.Add(1)
	e := st.errors.Value()
	if failed {
		e = st.errors.Add(1)
	}
	st.errorBP.Set(int64(e * 10000 / n))
}

// NewRouter validates the map and returns a router over it.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Map == nil {
		return nil, fmt.Errorf("shard router: nil map")
	}
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	for _, s := range cfg.Map.Shards {
		if s.Addr == "" {
			return nil, fmt.Errorf("shard router: shard %d has no addr", s.ID)
		}
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultRouterTimeout
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	rt := &Router{cfg: cfg, stats: make([]shardStat, len(cfg.Map.Shards))}
	for i := range rt.stats {
		prefix := "shard.router.s" + strconv.Itoa(i) + "."
		rt.stats[i] = shardStat{
			ns:       obsv.H(prefix + "ns"),
			requests: obsv.C(prefix + "requests"),
			errors:   obsv.C(prefix + "errors"),
			errorBP:  obsv.G(prefix + "error_bp"),
		}
	}
	agg, err := NewAggregator(AggregatorConfig{
		Members: func() []Member {
			members := make([]Member, len(cfg.Map.Shards))
			for i, s := range cfg.Map.Shards {
				members[i] = Member{Label: strconv.Itoa(s.ID), Base: s.Addr}
			}
			return members
		},
		Client:  cfg.Client,
		Timeout: cfg.Timeout,
		MaxAge:  cfg.FederateEvery,
	})
	if err != nil {
		return nil, err
	}
	rt.agg = agg
	return rt, nil
}

// Aggregator returns the router's metrics federation point (the engine
// behind /metrics/cluster and /readyz), for embedders that want to wire
// its FederatedSnapshot into a sink exporter.
func (rt *Router) Aggregator() *Aggregator { return rt.agg }

// SetDraining flips the router's readiness: a draining router answers
// /readyz 503 so load balancers stop sending new work, while in-flight
// and even new batches still succeed during the drain window.
func (rt *Router) SetDraining(v bool) { rt.draining.Store(v) }

// Map returns the router's shard map.
func (rt *Router) Map() *Map { return rt.cfg.Map }

// Handler returns the router's mux: POST /cluster (fan-out batch),
// GET /lookup (single-address proxy), GET /shardmap (the live map),
// GET /healthz (fan-out probe), GET /readyz (readiness: draining state,
// live-shard count and aggregator staleness), GET /metrics/cluster (the
// federated cluster metrics page).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster", rt.handleBatch)
	mux.HandleFunc("/lookup", rt.handleLookup)
	mux.HandleFunc("/shardmap", rt.handleShardMap)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/readyz", rt.handleReadyz)
	mux.Handle("/metrics/cluster", rt.agg.Handler())
	return mux
}

// Batch routes one probe batch with no inbound context: a fresh trace
// root. Kept for compatibility; request paths should call BatchCtx so
// the fan-out parents into the caller's trace.
func (rt *Router) Batch(addrs []netutil.Addr) *RouterBatchResponse {
	return rt.BatchCtx(context.Background(), addrs)
}

// BatchCtx routes one probe batch: group by shard, one concurrent POST
// /cluster per non-empty shard, scatter the answers back into input
// order. Always returns a response; per-shard failures are recorded in
// it, never escalated. The trace span tree roots in ctx — an inbound
// request whose header carried a span context makes the whole fan-out,
// including every shard's server-side spans, part of the caller's
// trace.
func (rt *Router) BatchCtx(ctx context.Context, addrs []netutil.Addr) *RouterBatchResponse {
	m := rt.cfg.Map
	start := time.Now()
	ctx, span := obsv.StartTraceSpan(ctx, "router.batch")

	groups := m.Group(addrs)
	resp := &RouterBatchResponse{
		MapVersion: m.Version,
		Results:    make([]RouterResult, len(addrs)),
	}

	var wg sync.WaitGroup
	reports := make([]ShardReport, len(groups))
	for sid, idxs := range groups {
		reports[sid] = ShardReport{ID: sid, Addr: m.Shards[sid].Addr, Addrs: len(idxs)}
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sid int, idxs []int) {
			defer wg.Done()
			sctx, sspan := obsv.StartTraceSpan(ctx, "router.shard")
			sspan.SetAttrInt("shard", int64(sid))
			sspan.SetAttrInt("addrs", int64(len(idxs)))
			shardStart := time.Now()
			br, err := rt.shardBatch(sctx, m.Shards[sid].Addr, addrs, idxs)
			rt.stats[sid].record(time.Since(shardStart), err != nil)
			if err != nil {
				routerShardErrs.Inc()
				sspan.Fail(err)
				sspan.End()
				reports[sid].Error = err.Error()
				for _, i := range idxs {
					resp.Results[i] = RouterResult{
						LookupResult: LookupResult{Addr: addrs[i].String()},
						Shard:        sid,
						Error:        err.Error(),
					}
				}
				return
			}
			sspan.End()
			reports[sid].Generation = br.Generation
			for k, i := range idxs {
				resp.Results[i] = RouterResult{LookupResult: br.Results[k], Shard: sid}
			}
		}(sid, idxs)
	}
	wg.Wait()

	for _, rep := range reports {
		if rep.Error != "" {
			if resp.Degradation == nil {
				resp.Degradation = make(map[string]string)
			}
			resp.Degradation[strconv.Itoa(rep.ID)] = rep.Error
		} else if rep.Generation > resp.Generation {
			resp.Generation = rep.Generation
		}
	}
	resp.Shards = reports

	routerBatches.Inc()
	routerAddrs.Add(uint64(len(addrs)))
	if len(resp.Degradation) > 0 {
		routerDegraded.Inc()
	}
	routerFanoutNS.Observe(time.Since(start).Nanoseconds())
	span.SetAttrInt("addrs", int64(len(addrs)))
	span.SetAttrInt("degraded_shards", int64(len(resp.Degradation)))
	span.End()
	return resp
}

// shardBatch sends one shard its contiguous probe slice and validates
// the response shape (one result per address, input order). The span
// context carried by ctx rides the request as an X-Netcluster-Trace
// header, so the shard's server-side spans join this trace.
func (rt *Router) shardBatch(ctx context.Context, base string, addrs []netutil.Addr, idxs []int) (*BatchResponse, error) {
	var body bytes.Buffer
	for _, i := range idxs {
		body.WriteString(addrs[i].String())
		body.WriteByte('\n')
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/cluster", &body)
	if err != nil {
		return nil, err
	}
	obsv.HTTPInject(ctx, req.Header)
	client := rt.cfg.Client
	if rt.cfg.Timeout > 0 {
		c := *client
		c.Timeout = rt.cfg.Timeout
		client = &c
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var br BatchResponse
	if err := decodeJSONBody(resp.Body, &br); err != nil {
		return nil, err
	}
	if len(br.Results) != len(idxs) {
		return nil, fmt.Errorf("shard returned %d results for %d addresses", len(br.Results), len(idxs))
	}
	return &br, nil
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an address list", http.StatusMethodNotAllowed)
		return
	}
	addrs, err := ParseAddrList(r.Body, rt.cfg.MaxBatch)
	if err != nil {
		status := http.StatusBadRequest
		if err == errBatchTooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	resp := rt.BatchCtx(obsv.HTTPExtract(r.Context(), r.Header), addrs)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleLookup proxies a single-address lookup to its owning shard.
func (rt *Router) handleLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("addr")
	addr, err := netutil.ParseAddr(q)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad addr %q: %v", q, err), http.StatusBadRequest)
		return
	}
	sid := rt.cfg.Map.ShardFor(addr)
	resp := rt.BatchCtx(obsv.HTTPExtract(r.Context(), r.Header), []netutil.Addr{addr})
	res := resp.Results[0]
	if res.Error != "" {
		http.Error(w, fmt.Sprintf("shard %d: %s", sid, res.Error), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

func (rt *Router) handleShardMap(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rt.cfg.Map)
}

// handleHealthz probes every shard's /healthz; the router is healthy
// when it is up, and reports which shards are not.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := rt.cfg.Map
	type probe struct {
		id  int
		err error
	}
	ch := make(chan probe, len(m.Shards))
	for _, s := range m.Shards {
		go func(s Info) {
			c := *rt.cfg.Client
			c.Timeout = rt.cfg.Timeout
			resp, err := c.Get(s.Addr + "/healthz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("%s", resp.Status)
				}
			}
			ch <- probe{s.ID, err}
		}(s)
	}
	var down []string
	for range m.Shards {
		p := <-ch
		if p.err != nil {
			down = append(down, fmt.Sprintf("shard %d: %v", p.id, p.err))
		}
	}
	sort.Strings(down)
	if len(down) > 0 {
		w.WriteHeader(http.StatusOK) // router itself is healthy; degraded cluster
		fmt.Fprintf(w, "degraded (%d/%d shards down)\n", len(down), len(m.Shards))
		for _, d := range down {
			fmt.Fprintln(w, d)
		}
		return
	}
	fmt.Fprintf(w, "ok shards=%d map_version=%d\n", len(m.Shards), m.Version)
}

// handleReadyz mirrors clusterd's readiness semantics at the router: a
// draining router or one that can reach no shard at all answers 503 so
// load balancers rotate it out; a partially-degraded cluster stays
// ready (partial answers are the router's contract) but the body says
// so. The live-shard count and staleness come from the metrics
// aggregator, refreshed when older than FederateEvery.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	rt.agg.refreshIfStale(r.Context())
	live, total := rt.agg.LiveShards(), len(rt.cfg.Map.Shards)
	staleMS := rt.agg.Staleness().Milliseconds()
	if live == 0 {
		http.Error(w, fmt.Sprintf("no live shards (0/%d)", total), http.StatusServiceUnavailable)
		return
	}
	if live < total {
		fmt.Fprintf(w, "ready (degraded %d/%d shards live) staleness_ms=%d map_version=%d\n",
			live, total, staleMS, rt.cfg.Map.Version)
		return
	}
	fmt.Fprintf(w, "ready shards=%d/%d staleness_ms=%d map_version=%d\n",
		live, total, staleMS, rt.cfg.Map.Version)
}
