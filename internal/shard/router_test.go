package shard

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/churn"
	"github.com/netaware/netcluster/internal/faultnet"
	"github.com/netaware/netcluster/internal/netutil"
)

// routerFixture stands up a 3-shard router over hand-built single-shard
// tables: shard 0 owns 10/8, shard 1 owns 100/8, shard 2 owns 200/8
// (NewMap(3): blocks 0-84 / 85-169 / 170-255).
type routerFixture struct {
	m      *Map
	router *Router
	srvs   []*httptest.Server
}

func newRouterFixture(t *testing.T, client *http.Client, timeout time.Duration) *routerFixture {
	t.Helper()
	fx := &routerFixture{m: NewMap(3)}
	for i, pfx := range []string{"10.0.0.0/8", "100.0.0.0/8", "200.0.0.0/8"} {
		mg := bgp.NewMerged()
		mg.Add(&bgp.Snapshot{Name: "AADS", Kind: bgp.SourceBGP, Entries: []bgp.Entry{
			{Prefix: netutil.MustParsePrefix(pfx)},
		}})
		srv := httptest.NewServer((&NodeServer{Table: churn.New(mg)}).Handler())
		t.Cleanup(srv.Close)
		fx.srvs = append(fx.srvs, srv)
		fx.m.Shards[i].Addr = srv.URL
	}
	rt, err := NewRouter(RouterConfig{Map: fx.m, Client: client, Timeout: timeout})
	if err != nil {
		t.Fatal(err)
	}
	fx.router = rt
	return fx
}

func postBatch(t *testing.T, client *http.Client, base string, addrs []string) *RouterBatchResponse {
	t.Helper()
	resp, err := client.Post(base+"/cluster", "text/plain", strings.NewReader(strings.Join(addrs, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /cluster = %s", resp.Status)
	}
	var out RouterBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestRouterMergesInInputOrder(t *testing.T) {
	fx := newRouterFixture(t, nil, 0)
	srv := httptest.NewServer(fx.router.Handler())
	defer srv.Close()

	// Interleave shards so any grouping bug scrambles the order.
	addrs := []string{
		"200.1.1.1", "10.1.1.1", "100.1.1.1", "200.2.2.2", "10.2.2.2", "99.99.99.99",
	}
	out := postBatch(t, srv.Client(), srv.URL, addrs)
	if len(out.Results) != len(addrs) {
		t.Fatalf("%d results for %d addrs", len(out.Results), len(addrs))
	}
	if len(out.Degradation) != 0 {
		t.Fatalf("healthy cluster degraded: %v", out.Degradation)
	}
	wantShard := []int{2, 0, 1, 2, 0, 1}
	wantClustered := []bool{true, true, true, true, true, false}
	for i, r := range out.Results {
		if r.Addr != addrs[i] {
			t.Fatalf("result %d is %s, want %s (order scrambled)", i, r.Addr, addrs[i])
		}
		if r.Shard != wantShard[i] || r.Clustered != wantClustered[i] || r.Error != "" {
			t.Fatalf("result %d = %+v, want shard %d clustered=%v", i, r, wantShard[i], wantClustered[i])
		}
	}
	// 99.99.99.99 is in shard 1's range but matches nothing there.
	if out.Results[5].Prefix != "" {
		t.Fatalf("unclustered row carries prefix %q", out.Results[5].Prefix)
	}
}

func TestRouterPartialDegradation(t *testing.T) {
	fx := newRouterFixture(t, nil, time.Second)
	// Shard 1 dies mid-deployment.
	fx.srvs[1].Close()
	srv := httptest.NewServer(fx.router.Handler())
	defer srv.Close()

	addrs := []string{"10.1.1.1", "100.1.1.1", "200.1.1.1", "100.2.2.2"}
	out := postBatch(t, srv.Client(), srv.URL, addrs)

	// The dead shard is reported explicitly, the batch itself succeeds.
	if len(out.Degradation) != 1 || out.Degradation["1"] == "" {
		t.Fatalf("Degradation = %v, want exactly shard 1", out.Degradation)
	}
	for i, r := range out.Results {
		owned := r.Shard == 1
		if owned && (r.Error == "" || r.Clustered) {
			t.Fatalf("dead-shard row %d = %+v, want error + zero answer", i, r)
		}
		if !owned && (r.Error != "" || !r.Clustered) {
			t.Fatalf("live-shard row %d = %+v, want clean answer", i, r)
		}
	}
	// Generation comes from live shards only.
	if out.Generation != 0 || out.MapVersion != 1 {
		t.Fatalf("generation %d, map version %d", out.Generation, out.MapVersion)
	}
	for _, rep := range out.Shards {
		if (rep.ID == 1) != (rep.Error != "") {
			t.Fatalf("shard report %+v", rep)
		}
	}
}

// faultTransport injects faults only on requests to one target host, so
// the router sees a partitioned shard while the rest of the cluster
// stays healthy — the faultnet-backed version of the one-shard-down
// contract.
type faultTransport struct {
	host    string
	faulty  http.RoundTripper
	healthy http.RoundTripper
}

func (ft *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Host == ft.host {
		return ft.faulty.RoundTrip(req)
	}
	return ft.healthy.RoundTrip(req)
}

func TestRouterDegradationUnderFaultnet(t *testing.T) {
	for _, tc := range []struct {
		name  string
		fault faultnet.Faults
	}{
		{"drop", faultnet.Faults{Drop: 1}},
		{"reset", faultnet.Faults{Reset: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fx := newRouterFixture(t, nil, 0)
			inj := faultnet.New(faultnet.Profile{Seed: 1, Outbound: tc.fault})
			client := &http.Client{Transport: &faultTransport{
				host:    strings.TrimPrefix(fx.srvs[2].URL, "http://"),
				faulty:  inj.RoundTripper(nil),
				healthy: http.DefaultTransport,
			}}
			rt, err := NewRouter(RouterConfig{Map: fx.m, Client: client, Timeout: time.Second})
			if err != nil {
				t.Fatal(err)
			}

			out := rt.Batch([]netutil.Addr{
				netutil.MustParseAddr("10.1.1.1"),
				netutil.MustParseAddr("200.1.1.1"),
				netutil.MustParseAddr("100.1.1.1"),
			})
			if len(out.Degradation) != 1 || out.Degradation["2"] == "" {
				t.Fatalf("Degradation = %v, want exactly shard 2", out.Degradation)
			}
			if r := out.Results[1]; r.Error == "" || r.Clustered {
				t.Fatalf("partitioned-shard row = %+v", r)
			}
			for _, i := range []int{0, 2} {
				if r := out.Results[i]; r.Error != "" || !r.Clustered {
					t.Fatalf("live row %d = %+v", i, r)
				}
			}
			if st := inj.Stats(); st.Ops == 0 {
				t.Fatal("injector never saw the partitioned shard's traffic")
			}
		})
	}
}

func TestRouterLookupProxyAndShardMap(t *testing.T) {
	fx := newRouterFixture(t, nil, 0)
	srv := httptest.NewServer(fx.router.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/lookup?addr=200.1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	var res RouterResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !res.Clustered || res.Shard != 2 || res.Prefix != "200.0.0.0/8" {
		t.Fatalf("proxied lookup = %+v", res)
	}

	resp, err = srv.Client().Get(srv.URL + "/shardmap")
	if err != nil {
		t.Fatal(err)
	}
	data := json.NewDecoder(resp.Body)
	var m Map
	if err := data.Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := m.Validate(); err != nil {
		t.Fatalf("/shardmap served an invalid map: %v", err)
	}
	if m.NumShards() != 3 || m.Shards[0].Addr == "" {
		t.Fatalf("/shardmap = %+v", m)
	}
}
