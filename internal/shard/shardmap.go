// Package shard turns the single-process clusterd service into a
// cluster of them: the paper's network-aware clusters partition the
// client address space, which makes the service embarrassingly shardable
// by prefix range. The package provides the three pieces a deployment
// needs:
//
//   - Map: a versioned prefix-range shard map assigning the 256 /8
//     blocks of the IPv4 space to N clusterd instances, served at
//     /shardmap so clients and operators can see the current layout;
//   - Feed/Follower: delta distribution — one elected compiler node
//     turns each churn step into a bgp.Delta, assigns it a sequence
//     number, and streams it to peers over HTTP, with
//     catch-up-from-snapshot on join, so every node's table generation
//     advances in lockstep;
//   - Router: a thin coordinator that fans batch /cluster requests out
//     per shard, merges results in input order, and degrades per shard
//     (partial results plus a Degradation error map) instead of failing
//     the whole batch when a node dies.
//
// Every component speaks the clusterd wire format (wire.go), so the
// router fronts real clusterd processes and the in-process harness
// (harness.go) interchangeably.
package shard

import (
	"encoding/json"
	"fmt"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/netutil"
)

// Info describes one shard: which contiguous run of /8 blocks it owns
// and, in a deployed map, the base URL of the clusterd instance serving
// it. Block bounds are inclusive.
type Info struct {
	ID         int    `json:"id"`
	FirstBlock int    `json:"first_block"`
	LastBlock  int    `json:"last_block"`
	Addr       string `json:"addr,omitempty"`
}

// First returns the lowest address the shard owns.
func (s Info) First() netutil.Addr { return netutil.Addr(uint32(s.FirstBlock) << 24) }

// Last returns the highest address the shard owns.
func (s Info) Last() netutil.Addr { return netutil.Addr(uint32(s.LastBlock)<<24 | 0x00FF_FFFF) }

// Map is a versioned partition of the IPv4 address space into shards.
// Shards own contiguous /8 block ranges that together cover the whole
// space with no overlap; the Version lets clients detect a re-shard
// (every response naming a shard carries the map version it used).
type Map struct {
	Version uint64 `json:"version"`
	Shards  []Info `json:"shards"`

	// owner[b] is the shard index owning /8 block b; derived, not
	// serialized.
	owner [256]uint8
}

// NewMap partitions the address space into n shards of (near-)equal
// block counts: shard i owns blocks [i*256/n, (i+1)*256/n). n must be in
// [1, 256].
func NewMap(n int) *Map {
	if n < 1 || n > 256 {
		panic(fmt.Sprintf("shard: NewMap(%d): shard count out of range [1,256]", n))
	}
	m := &Map{Version: 1}
	for i := 0; i < n; i++ {
		m.Shards = append(m.Shards, Info{
			ID:         i,
			FirstBlock: i * 256 / n,
			LastBlock:  (i+1)*256/n - 1,
		})
	}
	m.index()
	return m
}

// index rebuilds the derived block→shard table.
func (m *Map) index() {
	for i, s := range m.Shards {
		for b := s.FirstBlock; b <= s.LastBlock; b++ {
			m.owner[b] = uint8(i)
		}
	}
}

// Validate checks the map invariants: ids are positional, block ranges
// are sane, and the shards tile the 256 blocks exactly. It also rebuilds
// the derived index, so a map decoded from JSON must be Validated before
// use.
func (m *Map) Validate() error {
	if len(m.Shards) == 0 || len(m.Shards) > 256 {
		return fmt.Errorf("shard map: %d shards, want 1..256", len(m.Shards))
	}
	next := 0
	for i, s := range m.Shards {
		if s.ID != i {
			return fmt.Errorf("shard map: shard %d has id %d, ids must be positional", i, s.ID)
		}
		if s.FirstBlock != next || s.LastBlock < s.FirstBlock || s.LastBlock > 255 {
			return fmt.Errorf("shard map: shard %d blocks [%d,%d], want to start at %d",
				i, s.FirstBlock, s.LastBlock, next)
		}
		next = s.LastBlock + 1
	}
	if next != 256 {
		return fmt.Errorf("shard map: shards cover blocks [0,%d), want [0,256)", next)
	}
	m.index()
	return nil
}

// ParseMap decodes and validates a JSON shard map (the /shardmap body).
func ParseMap(data []byte) (*Map, error) {
	m := &Map{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("shard map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// NumShards returns the number of shards in the map.
func (m *Map) NumShards() int { return len(m.Shards) }

// ShardFor returns the shard owning addr — one table load off the top
// byte, cheap enough for per-probe routing.
func (m *Map) ShardFor(a netutil.Addr) int { return int(m.owner[a>>24]) }

// Overlaps reports whether prefix p covers any address the shard owns.
// A shard must hold every table prefix overlapping its range: a /6
// announce can span several /8 blocks, and the longest match for an
// owned address may be that spanning prefix.
func (m *Map) Overlaps(id int, p netutil.Prefix) bool {
	s := m.Shards[id]
	return p.First() <= s.Last() && p.Last() >= s.First()
}

// Keep returns the per-prefix retention predicate for one shard — the
// filter a shard node applies to its boot snapshot and to every streamed
// delta. The default route (/0) is kept everywhere: it never matches,
// but its provenance row travels with the table.
func (m *Map) Keep(id int) func(netutil.Prefix) bool {
	return func(p netutil.Prefix) bool { return m.Overlaps(id, p) }
}

// FilterDelta restricts d to the operations shard id must apply: ops
// whose prefix overlaps the shard's range.
func (m *Map) FilterDelta(id int, d bgp.Delta) bgp.Delta {
	return FilterDelta(m.Keep(id), d)
}

// FilterDelta restricts d to the ops whose prefix keep accepts. The
// result shares d's op backing only when everything is kept; sequence
// accounting is the caller's (a filtered-to-empty delta still advances
// the shard's generation, keeping the cluster in lockstep).
func FilterDelta(keep func(netutil.Prefix) bool, d bgp.Delta) bgp.Delta {
	n := 0
	for _, op := range d.Ops {
		if keep(op.Entry.Prefix) {
			n++
		}
	}
	if n == len(d.Ops) {
		return d
	}
	out := bgp.Delta{Source: d.Source, Ops: make([]bgp.Op, 0, n)}
	for _, op := range d.Ops {
		if keep(op.Entry.Prefix) {
			out.Ops = append(out.Ops, op)
		}
	}
	return out
}

// Group partitions a probe batch by owning shard, preserving input
// order within each shard: groups[s] lists the indices into addrs that
// shard s owns, ascending. The router uses it to build one contiguous
// probe slice per shard and to scatter the merged answers back into
// input order.
func (m *Map) Group(addrs []netutil.Addr) [][]int {
	groups := make([][]int, len(m.Shards))
	// Count first so each group is allocated exactly once.
	counts := make([]int, len(m.Shards))
	for _, a := range addrs {
		counts[m.owner[a>>24]]++
	}
	for s, n := range counts {
		if n > 0 {
			groups[s] = make([]int, 0, n)
		}
	}
	for i, a := range addrs {
		s := m.owner[a>>24]
		groups[s] = append(groups[s], i)
	}
	return groups
}
