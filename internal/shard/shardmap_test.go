package shard

import (
	"encoding/json"
	"testing"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/netutil"
)

func TestNewMapTilesExactly(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16, 255, 256} {
		m := NewMap(n)
		if err := m.Validate(); err != nil {
			t.Fatalf("NewMap(%d): %v", n, err)
		}
		if m.NumShards() != n {
			t.Fatalf("NewMap(%d) has %d shards", n, m.NumShards())
		}
		// Every /8 block must land in the shard that claims it.
		for b := 0; b < 256; b++ {
			s := m.ShardFor(netutil.Addr(uint32(b) << 24))
			if b < m.Shards[s].FirstBlock || b > m.Shards[s].LastBlock {
				t.Fatalf("NewMap(%d): block %d routed to shard %d [%d,%d]",
					n, b, s, m.Shards[s].FirstBlock, m.Shards[s].LastBlock)
			}
		}
	}
}

func TestMapValidateRejectsBadMaps(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards []Info
	}{
		{"empty", nil},
		{"gap", []Info{{ID: 0, FirstBlock: 0, LastBlock: 100}, {ID: 1, FirstBlock: 102, LastBlock: 255}}},
		{"overlap", []Info{{ID: 0, FirstBlock: 0, LastBlock: 128}, {ID: 1, FirstBlock: 100, LastBlock: 255}}},
		{"short", []Info{{ID: 0, FirstBlock: 0, LastBlock: 200}}},
		{"bad ids", []Info{{ID: 1, FirstBlock: 0, LastBlock: 255}}},
		{"inverted", []Info{{ID: 0, FirstBlock: 0, LastBlock: 255}, {ID: 1, FirstBlock: 256, LastBlock: 250}}},
	} {
		m := &Map{Version: 1, Shards: tc.shards}
		if err := m.Validate(); err == nil {
			t.Errorf("%s map validated", tc.name)
		}
	}
}

func TestParseMapRoundTrip(t *testing.T) {
	m := NewMap(4)
	m.Version = 7
	m.Shards[2].Addr = "http://127.0.0.1:9999"
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMap(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 7 || got.NumShards() != 4 || got.Shards[2].Addr != m.Shards[2].Addr {
		t.Fatalf("round trip = %+v", got)
	}
	// The derived index must be rebuilt on parse.
	if got.ShardFor(netutil.MustParseAddr("255.0.0.1")) != 3 {
		t.Fatalf("parsed map routes 255/8 to shard %d", got.ShardFor(netutil.MustParseAddr("255.0.0.1")))
	}
	if _, err := ParseMap([]byte(`{"version":1,"shards":[{"id":0,"first_block":0,"last_block":10}]}`)); err == nil {
		t.Fatal("partial map parsed")
	}
}

func TestOverlapsSpanningPrefix(t *testing.T) {
	m := NewMap(3)                              // shard 0: blocks 0-84, shard 1: 85-169, shard 2: 170-255
	p6 := netutil.MustParsePrefix("84.0.0.0/6") // blocks 84..87: spans shards 0 and 1
	if !m.Overlaps(0, p6) || !m.Overlaps(1, p6) {
		t.Fatalf("/6 across the boundary overlaps = %v,%v, want true,true",
			m.Overlaps(0, p6), m.Overlaps(1, p6))
	}
	if m.Overlaps(2, p6) {
		t.Fatal("/6 reported in a shard it cannot reach")
	}
	// A shard must keep every prefix that could be the longest match for
	// an owned address, even when the prefix starts outside its range.
	if !m.Keep(1)(p6) {
		t.Fatal("Keep(1) rejected a spanning prefix")
	}
}

func TestFilterDelta(t *testing.T) {
	m := NewMap(2) // shard 0: blocks 0-127, shard 1: 128-255
	d := bgp.Delta{Source: "feed", Ops: []bgp.Op{
		{Kind: bgp.SourceBGP, Entry: bgp.Entry{Prefix: netutil.MustParsePrefix("10.0.0.0/8")}},
		{Kind: bgp.SourceBGP, Entry: bgp.Entry{Prefix: netutil.MustParsePrefix("200.1.0.0/16")}},
		{Withdraw: true, Kind: bgp.SourceBGP, Entry: bgp.Entry{Prefix: netutil.MustParsePrefix("100.0.0.0/7")}},
	}}
	d0 := m.FilterDelta(0, d)
	if len(d0.Ops) != 2 || d0.Ops[0].Entry.Prefix.String() != "10.0.0.0/8" || d0.Ops[1].Entry.Prefix.String() != "100.0.0.0/7" {
		t.Fatalf("shard 0 delta = %+v", d0.Ops)
	}
	d1 := m.FilterDelta(1, d)
	// 100.0.0.0/7 spans 100..101.x — entirely inside shard 0's range.
	if len(d1.Ops) != 1 || d1.Ops[0].Entry.Prefix.String() != "200.1.0.0/16" {
		t.Fatalf("shard 1 delta = %+v", d1.Ops)
	}
	if kept := m.FilterDelta(0, d0); len(kept.Ops) != len(d0.Ops) {
		t.Fatal("fully-kept delta changed size")
	}
	if d1.Source != "feed" {
		t.Fatal("filter dropped the source label")
	}
}

func TestGroupPreservesInputOrder(t *testing.T) {
	m := NewMap(3)
	addrs := []netutil.Addr{
		netutil.MustParseAddr("200.0.0.1"), // shard 2
		netutil.MustParseAddr("10.0.0.1"),  // shard 0
		netutil.MustParseAddr("200.0.0.2"), // shard 2
		netutil.MustParseAddr("100.0.0.1"), // shard 1
		netutil.MustParseAddr("10.0.0.2"),  // shard 0
	}
	groups := m.Group(addrs)
	want := [][]int{{1, 4}, {3}, {0, 2}}
	for s := range want {
		if len(groups[s]) != len(want[s]) {
			t.Fatalf("shard %d group = %v, want %v", s, groups[s], want[s])
		}
		for k := range want[s] {
			if groups[s][k] != want[s][k] {
				t.Fatalf("shard %d group = %v, want %v", s, groups[s], want[s])
			}
		}
	}
}

func TestDeltaWireRoundTrip(t *testing.T) {
	d := bgp.Delta{Source: "view-3", Ops: []bgp.Op{
		{Kind: bgp.SourceBGP, Entry: bgp.Entry{
			Prefix: netutil.MustParsePrefix("12.65.128.0/19"), Description: "d",
			NextHop: "192.0.2.1", ASPath: []uint32{7018, 701}, PeerDesc: "peer",
		}},
		{Withdraw: true, Kind: bgp.SourceNetworkDump, Entry: bgp.Entry{Prefix: netutil.MustParsePrefix("24.0.0.0/8")}},
	}}
	w := EncodeDelta(17, d)
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var w2 WireDelta
	if err := json.Unmarshal(data, &w2); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDelta(w2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != d.Source || len(got.Ops) != len(d.Ops) {
		t.Fatalf("round trip = %+v", got)
	}
	for i := range d.Ops {
		if got.Ops[i].Withdraw != d.Ops[i].Withdraw || got.Ops[i].Kind != d.Ops[i].Kind ||
			got.Ops[i].Entry.Prefix != d.Ops[i].Entry.Prefix ||
			got.Ops[i].Entry.NextHop != d.Ops[i].Entry.NextHop ||
			len(got.Ops[i].Entry.ASPath) != len(d.Ops[i].Entry.ASPath) {
			t.Fatalf("op %d = %+v, want %+v", i, got.Ops[i], d.Ops[i])
		}
	}

	if _, err := DecodeDelta(WireDelta{Seq: 1, Ops: []WireOp{{Prefix: "not-a-prefix"}}}); err == nil {
		t.Fatal("corrupt prefix decoded")
	}
	if _, err := DecodeDelta(WireDelta{Seq: 1, Ops: []WireOp{{Prefix: "10.0.0.0/8", Kind: 99}}}); err == nil {
		t.Fatal("unknown kind decoded")
	}
}
