package shard

import (
	"fmt"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/netutil"
)

// Wire format shared by clusterd, the shard nodes and the router. The
// lookup/batch shapes are exactly what cmd/clusterd has served since the
// service landed, so the router fronts old single-node deployments
// unchanged; the delta shapes are the feed protocol (feed.go).

// LookupResult is one address's clustering answer.
type LookupResult struct {
	Addr       string `json:"addr"`
	Clustered  bool   `json:"clustered"`
	Prefix     string `json:"prefix,omitempty"`
	Kind       string `json:"kind,omitempty"`
	Generation uint64 `json:"generation"`
}

// ResolveMatch renders a pinned-generation batch match into the wire
// shape (zero Match = unclusterable, as bgp.Compiled.LookupBatch
// reports misses).
func ResolveMatch(addr netutil.Addr, m bgp.Match, gen uint64) LookupResult {
	res := LookupResult{Addr: addr.String(), Generation: gen}
	if !m.Prefix.IsZero() {
		res.Clustered = true
		res.Prefix = m.Prefix.String()
		res.Kind = m.Kind.String()
	}
	return res
}

// BatchResponse is the POST /cluster answer of a single node: every
// result resolved against one pinned table generation.
type BatchResponse struct {
	Generation uint64         `json:"generation"`
	Results    []LookupResult `json:"results"`
}

// RouterResult is a LookupResult annotated with the shard that answered
// it. Rows owned by an unreachable shard carry Error and a zero answer —
// partial degradation, never a wrong answer.
type RouterResult struct {
	LookupResult
	Shard int    `json:"shard"`
	Error string `json:"error,omitempty"`
}

// ShardReport is one shard's slice of a routed batch.
type ShardReport struct {
	ID         int    `json:"id"`
	Addr       string `json:"addr"`
	Generation uint64 `json:"generation"`
	Addrs      int    `json:"addrs"`
	Error      string `json:"error,omitempty"`
}

// RouterBatchResponse is the routed POST /cluster answer: results in
// input order, a per-shard fan-out report, and — when any shard failed —
// the Degradation map (shard id → error), the explicit partial-failure
// contract the single-node service never needed.
type RouterBatchResponse struct {
	MapVersion  uint64            `json:"map_version"`
	Generation  uint64            `json:"generation"` // max generation among live shards
	Results     []RouterResult    `json:"results"`
	Shards      []ShardReport     `json:"shards"`
	Degradation map[string]string `json:"degradation,omitempty"`
}

// WireOp is the JSON form of one bgp.Op on the delta stream. Field names
// are terse because a burst delta carries hundreds of ops.
type WireOp struct {
	Withdraw bool     `json:"w,omitempty"`
	Kind     uint8    `json:"k,omitempty"`
	Prefix   string   `json:"p"`
	Desc     string   `json:"d,omitempty"`
	NextHop  string   `json:"nh,omitempty"`
	ASPath   []uint32 `json:"as,omitempty"`
	PeerDesc string   `json:"pd,omitempty"`
}

// WireDelta is one sequenced delta batch on the feed.
type WireDelta struct {
	Seq    uint64   `json:"seq"`
	Source string   `json:"source,omitempty"`
	Ops    []WireOp `json:"ops"`
}

// DeltaResponse is the GET /feed/deltas answer: every retained delta in
// (from, from+max], in sequence order, plus the feed's head position so
// a follower can report its lag.
type DeltaResponse struct {
	Head   uint64      `json:"head"`
	Deltas []WireDelta `json:"deltas"`
}

// EncodeDelta renders d for the stream.
func EncodeDelta(seq uint64, d bgp.Delta) WireDelta {
	w := WireDelta{Seq: seq, Source: d.Source, Ops: make([]WireOp, len(d.Ops))}
	for i, op := range d.Ops {
		w.Ops[i] = WireOp{
			Withdraw: op.Withdraw,
			Kind:     uint8(op.Kind),
			Prefix:   op.Entry.Prefix.String(),
			Desc:     op.Entry.Description,
			NextHop:  op.Entry.NextHop,
			ASPath:   op.Entry.ASPath,
			PeerDesc: op.Entry.PeerDesc,
		}
	}
	return w
}

// DecodeDelta parses and validates a streamed delta. Every prefix must
// parse and every kind must be a known source class — a corrupt feed
// entry is rejected as a whole rather than half-applied.
func DecodeDelta(w WireDelta) (bgp.Delta, error) {
	d := bgp.Delta{Source: w.Source, Ops: make([]bgp.Op, len(w.Ops))}
	for i, op := range w.Ops {
		p, err := netutil.ParsePrefix(op.Prefix)
		if err != nil {
			return bgp.Delta{}, fmt.Errorf("delta seq %d op %d: %w", w.Seq, i, err)
		}
		if op.Kind > uint8(bgp.SourceNetworkDump) {
			return bgp.Delta{}, fmt.Errorf("delta seq %d op %d: unknown source kind %d", w.Seq, i, op.Kind)
		}
		d.Ops[i] = bgp.Op{
			Withdraw: op.Withdraw,
			Kind:     bgp.SourceKind(op.Kind),
			Entry: bgp.Entry{
				Prefix:      p,
				Description: op.Desc,
				NextHop:     op.NextHop,
				ASPath:      op.ASPath,
				PeerDesc:    op.PeerDesc,
			},
		}
	}
	return d, nil
}
