// Package sketch provides the bounded-memory stream summaries behind
// firehose-scale clustering: a count-min sketch with conservative
// update and a space-saving heavy-hitter summary, both mergeable across
// shards. The combination implements the paper's own thresholding
// observation as a data structure: ~70% of requests come from a small
// busy tail of clusters (Section 4.1.3), so the busy clusters are
// tracked exactly in O(K) counters while the long tail is approximated
// in O(width·depth) sketch cells — memory independent of how many
// distinct clusters a 100M-request stream touches.
//
// Guarantees, each property-tested in sketch_test.go:
//
//   - CountMin.Estimate never undercounts: estimate ≥ true count,
//     always; estimate ≤ true count + ε·N with probability ≥ 1-δ for
//     width ≥ e/ε, depth ≥ ln(1/δ).
//   - SpaceSaving with capacity C retains every item whose true count
//     exceeds N/C, and brackets every retained item's true count in
//     [Count-Err, Count]. An entry with Err == 0 is exact.
//   - Merge(a, b) of plain-update count-min sketches equals the sketch
//     of the concatenated stream, cell for cell. (Conservative update
//     trades this equality for tighter estimates: merged cells then
//     upper-bound the concatenated-stream sketch instead of matching
//     it, preserving overestimate-only.)
package sketch

import (
	"fmt"
	"math"
)

// splitmix64 is the SplitMix64 finalizer: a full-avalanche bijection on
// uint64, used to derive per-row hash functions. Deterministic, so any
// two sketches with equal dimensions hash identically and merge.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rowSeed returns the hash seed for sketch row i. Package-level and
// pure, so every CountMin of a given depth uses the same hash family —
// the precondition for cell-wise merge.
func rowSeed(i int) uint64 {
	return splitmix64(uint64(i+1) * 0x9e3779b97f4a7c15)
}

// CountMin is a count-min sketch over uint64 keys: depth rows of width
// counters, each row indexed by an independent hash. Estimates are the
// minimum over rows, so they only ever overcount. Not safe for
// concurrent use; callers on shared paths hold their own lock (the
// accumulator in internal/cluster locks per batch, not per record).
type CountMin struct {
	width uint64 // power of two
	depth int
	mask  uint64
	total uint64   // N: sum of all added weights
	rows  []uint64 // depth consecutive segments of width cells
}

// NewCountMin builds a sketch with the given dimensions; width is
// rounded up to a power of two (indexing is a mask, not a modulo).
func NewCountMin(width, depth int) *CountMin {
	if width < 2 {
		width = 2
	}
	if depth < 1 {
		depth = 1
	}
	w := uint64(1)
	for w < uint64(width) {
		w <<= 1
	}
	return &CountMin{
		width: w,
		depth: depth,
		mask:  w - 1,
		rows:  make([]uint64, w*uint64(depth)),
	}
}

// NewCountMinError sizes the sketch from an accuracy target: estimates
// exceed true counts by at most epsilon·N with probability ≥ 1-delta
// (width = e/epsilon rounded up to a power of two, depth = ln(1/delta)
// rounded up).
func NewCountMinError(epsilon, delta float64) (*CountMin, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return nil, fmt.Errorf("sketch: epsilon %v out of (0, 1)", epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("sketch: delta %v out of (0, 1)", delta)
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMin(width, depth), nil
}

// Width returns the (rounded) row width.
func (c *CountMin) Width() int { return int(c.width) }

// Depth returns the number of rows.
func (c *CountMin) Depth() int { return c.depth }

// Total returns N, the sum of every weight added so far.
func (c *CountMin) Total() uint64 { return c.total }

// Epsilon returns the guaranteed per-query error fraction for this
// width: Estimate(k) ≤ true(k) + Epsilon()·Total() with probability
// ≥ 1 - exp(-depth).
func (c *CountMin) Epsilon() float64 { return math.E / float64(c.width) }

// ErrorBound returns the current absolute error ceiling ε·N.
func (c *CountMin) ErrorBound() uint64 {
	return uint64(math.Ceil(c.Epsilon() * float64(c.total)))
}

// cell returns the row-i cell index for key.
func (c *CountMin) cell(i int, key uint64) uint64 {
	return uint64(i)*c.width + (splitmix64(key^rowSeed(i)) & c.mask)
}

// Add records weight w for key with the plain update rule: every row's
// cell grows by w. Plain updates keep the sketch exactly mergeable —
// Merge(a, b) equals the sketch of the concatenated stream.
func (c *CountMin) Add(key, w uint64) {
	c.total += w
	for i := 0; i < c.depth; i++ {
		c.rows[c.cell(i, key)] += w
	}
}

// AddConservative records weight w with the conservative-update rule:
// only cells below the item's new estimate grow, and only up to it.
// Collisions inflate far fewer cells than plain update, so estimates
// tighten — at the cost of exact mergeability (see package comment).
// It returns the key's new estimate.
func (c *CountMin) AddConservative(key, w uint64) uint64 {
	c.total += w
	est := uint64(math.MaxUint64)
	for i := 0; i < c.depth; i++ {
		if v := c.rows[c.cell(i, key)]; v < est {
			est = v
		}
	}
	est += w
	for i := 0; i < c.depth; i++ {
		if j := c.cell(i, key); c.rows[j] < est {
			c.rows[j] = est
		}
	}
	return est
}

// Estimate returns the key's count upper bound: the minimum cell over
// all rows. Never less than the key's true added weight.
func (c *CountMin) Estimate(key uint64) uint64 {
	est := uint64(math.MaxUint64)
	for i := 0; i < c.depth; i++ {
		if v := c.rows[c.cell(i, key)]; v < est {
			est = v
		}
	}
	return est
}

// Merge folds o into c cell by cell. Both sketches must have identical
// dimensions — same width, same depth — or the merge is rejected
// loudly; a dimension-mismatched merge would silently misalign every
// hash. For plain-update sketches the result is exactly the sketch of
// the concatenated streams.
func (c *CountMin) Merge(o *CountMin) error {
	if o == nil {
		return fmt.Errorf("sketch: merge with nil count-min")
	}
	if c.width != o.width || c.depth != o.depth {
		return fmt.Errorf("sketch: merge dimension mismatch: %dx%d vs %dx%d",
			c.width, c.depth, o.width, o.depth)
	}
	for i, v := range o.rows {
		c.rows[i] += v
	}
	c.total += o.total
	return nil
}

// Clone returns an independent deep copy (snapshots for merge trees).
func (c *CountMin) Clone() *CountMin {
	out := &CountMin{width: c.width, depth: c.depth, mask: c.mask, total: c.total}
	out.rows = append([]uint64(nil), c.rows...)
	return out
}

// FootprintBytes returns the fixed memory the sketch holds — the number
// the bounded accumulator's RSS ceiling is computed from.
func (c *CountMin) FootprintBytes() int {
	return len(c.rows)*8 + 64
}
