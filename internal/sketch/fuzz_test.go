package sketch

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzSketchMerge drives the merge algebra and the snapshot decoders
// with fuzzed dimensions, streams and raw blobs:
//
//   - merge is commutative and associative for plain-update count-min
//     sketches of equal dimensions (cell-for-cell);
//   - dimension- and capacity-mismatched merges return errors, never
//     panic;
//   - arbitrary bytes fed to the snapshot decoders either fail loudly
//     or round-trip byte-identically and merge cleanly.
func FuzzSketchMerge(f *testing.F) {
	f.Add(uint8(6), uint8(3), uint8(7), uint8(2), int64(1), uint16(100), uint16(200), uint16(300), []byte{})
	f.Add(uint8(4), uint8(2), uint8(4), uint8(2), int64(9), uint16(50), uint16(0), uint16(17), []byte("nCM1"))
	seedCM := NewCountMin(32, 2)
	seedCM.Add(5, 3)
	seedBlob, _ := seedCM.MarshalBinary()
	f.Add(uint8(5), uint8(2), uint8(5), uint8(2), int64(3), uint16(10), uint16(10), uint16(10), seedBlob)
	seedSS := NewSpaceSaving(4)
	seedSS.Add(1, 2, 3)
	ssBlob, _ := seedSS.MarshalBinary()
	f.Add(uint8(3), uint8(1), uint8(6), uint8(4), int64(8), uint16(99), uint16(1), uint16(1000), ssBlob)

	f.Fuzz(func(t *testing.T, logW1, depth1, logW2, depth2 uint8, seed int64, nA, nB, nC uint16, raw []byte) {
		w1 := 1 << (logW1%10 + 1) // 2..1024
		d1 := int(depth1%6) + 1
		w2 := 1 << (logW2%10 + 1)
		d2 := int(depth2%6) + 1

		rng := rand.New(rand.NewSource(seed))
		mkStream := func(n uint16) []uint64 {
			s := make([]uint64, int(n)%2048)
			for i := range s {
				s[i] = rng.Uint64() % 512
			}
			return s
		}
		fill := func(w, d int, stream []uint64) *CountMin {
			c := NewCountMin(w, d)
			for _, k := range stream {
				c.Add(k, 1)
			}
			return c
		}
		sa, sb, sc := mkStream(nA), mkStream(nB), mkStream(nC)
		a, b, c := fill(w1, d1, sa), fill(w1, d1, sb), fill(w1, d1, sc)

		// Commutativity: a+b == b+a.
		ab := a.Clone()
		if err := ab.Merge(b); err != nil {
			t.Fatalf("equal-dimension merge failed: %v", err)
		}
		ba := b.Clone()
		if err := ba.Merge(a); err != nil {
			t.Fatalf("equal-dimension merge failed: %v", err)
		}
		if !bytes.Equal(mustBlob(t, ab), mustBlob(t, ba)) {
			t.Fatal("merge is not commutative")
		}

		// Associativity: (a+b)+c == a+(b+c).
		abc1 := ab.Clone()
		if err := abc1.Merge(c); err != nil {
			t.Fatal(err)
		}
		bc := b.Clone()
		if err := bc.Merge(c); err != nil {
			t.Fatal(err)
		}
		abc2 := a.Clone()
		if err := abc2.Merge(bc); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mustBlob(t, abc1), mustBlob(t, abc2)) {
			t.Fatal("merge is not associative")
		}

		// Mismatched dimensions: rejected loudly, never a panic, and the
		// receiver is left untouched.
		if w1 != w2 || d1 != d2 {
			other := NewCountMin(w2, d2)
			other.Add(1, 1)
			before := mustBlob(t, a)
			if err := a.Merge(other); err == nil {
				t.Fatalf("merge of %dx%d into %dx%d accepted", w2, d2, w1, d1)
			}
			if !bytes.Equal(before, mustBlob(t, a)) {
				t.Fatal("rejected merge mutated the receiver")
			}
		}

		// Space-saving: same algebra checks at the guarantee level.
		ssa := NewSpaceSaving(8)
		ssb := NewSpaceSaving(8)
		for _, k := range sa {
			ssa.Add(k, 1, k)
		}
		for _, k := range sb {
			ssb.Add(k, 1, k)
		}
		merged := ssa.Clone()
		if err := merged.Merge(ssb); err != nil {
			t.Fatalf("equal-capacity merge failed: %v", err)
		}
		if merged.Len() > merged.Capacity() {
			t.Fatalf("merged summary %d entries over capacity %d", merged.Len(), merged.Capacity())
		}
		if merged.Total() != ssa.Total()+ssb.Total() {
			t.Fatal("merged total diverged")
		}
		if err := ssa.Merge(NewSpaceSaving(9)); err == nil {
			t.Fatal("capacity-mismatched space-saving merge accepted")
		}

		// Snapshot decoders on raw fuzz bytes: no panics; an accepted
		// blob must round-trip byte-identically and merge cleanly with a
		// same-dimension peer.
		if cm, err := UnmarshalCountMin(raw); err == nil {
			again, err := cm.MarshalBinary()
			if err != nil || !bytes.Equal(again, raw) {
				t.Fatalf("accepted count-min snapshot does not round-trip (err %v)", err)
			}
			peer := NewCountMin(cm.Width(), cm.Depth())
			if err := peer.Merge(cm); err != nil {
				t.Fatalf("accepted snapshot refuses same-dimension merge: %v", err)
			}
		}
		if ss, err := UnmarshalSpaceSaving(raw); err == nil {
			again, err := ss.MarshalBinary()
			if err != nil {
				t.Fatalf("accepted space-saving snapshot re-marshal failed: %v", err)
			}
			back, err := UnmarshalSpaceSaving(again)
			if err != nil || back.Len() != ss.Len() || back.Total() != ss.Total() {
				t.Fatalf("space-saving snapshot round trip diverged (err %v)", err)
			}
			peer := NewSpaceSaving(ss.Capacity())
			if err := peer.Merge(ss); err != nil {
				t.Fatalf("accepted snapshot refuses same-capacity merge: %v", err)
			}
		}
	})
}

func mustBlob(t *testing.T, c *CountMin) []byte {
	t.Helper()
	b, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
