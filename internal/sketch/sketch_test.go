package sketch

import (
	"bytes"
	"math/rand"
	"testing"
)

// zipfStream draws n keys from a Zipf-shaped popularity over a key
// universe, returning the stream and the exact count per key. The
// shape matters: the sketch guarantees are trivial on uniform streams
// and are stressed exactly where the paper's workloads live, on
// heavy-tailed ones.
func zipfStream(seed int64, n int, universe uint64, s float64) ([]uint64, map[uint64]uint64) {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, universe-1)
	stream := make([]uint64, n)
	truth := make(map[uint64]uint64, universe)
	for i := range stream {
		// Scramble the rank so key order carries no popularity signal.
		k := splitmix64(z.Uint64())
		stream[i] = k
		truth[k]++
	}
	return stream, truth
}

// TestCountMinNeverUndercounts is the core sketch invariant: for every
// key, under both update rules, the estimate is at least the true
// count — overestimate-only, with no exceptions, on every seed.
func TestCountMinNeverUndercounts(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 42, 1998} {
		for _, conservative := range []bool{false, true} {
			cm := NewCountMin(512, 4)
			stream, truth := zipfStream(seed, 20000, 4096, 1.3)
			for _, k := range stream {
				if conservative {
					cm.AddConservative(k, 1)
				} else {
					cm.Add(k, 1)
				}
			}
			if cm.Total() != uint64(len(stream)) {
				t.Fatalf("seed %d: total %d, want %d", seed, cm.Total(), len(stream))
			}
			for k, want := range truth {
				if got := cm.Estimate(k); got < want {
					t.Fatalf("seed %d conservative=%v: key %#x estimated %d < true %d",
						seed, conservative, k, got, want)
				}
			}
		}
	}
}

// TestCountMinErrorBound checks the ε·N accuracy claim empirically:
// the per-key overestimate stays within ErrorBound for (far) more than
// the 1-δ fraction of keys the theory promises. Conservative update
// must never be looser than plain update in aggregate.
func TestCountMinErrorBound(t *testing.T) {
	for _, seed := range []int64{7, 11, 13} {
		cm, err := NewCountMinError(0.01, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		stream, truth := zipfStream(seed, 50000, 1<<16, 1.2)
		for _, k := range stream {
			cm.AddConservative(k, 1)
		}
		bound := cm.ErrorBound()
		violations := 0
		for k, want := range truth {
			if cm.Estimate(k)-want > bound {
				violations++
			}
		}
		if frac := float64(violations) / float64(len(truth)); frac > 0.01 {
			t.Fatalf("seed %d: %.3f%% of keys exceed the ε·N=%d bound (δ=1%%)",
				seed, 100*frac, bound)
		}
	}
}

// TestCountMinWeightedAndUnseen covers weighted updates and the
// trivial-but-load-bearing unseen-key case.
func TestCountMinWeightedAndUnseen(t *testing.T) {
	cm := NewCountMin(256, 3)
	cm.Add(1, 10)
	cm.Add(2, 5)
	cm.AddConservative(1, 7)
	if got := cm.Estimate(1); got < 17 {
		t.Fatalf("estimate(1) = %d, want >= 17", got)
	}
	if cm.Total() != 22 {
		t.Fatalf("total = %d, want 22", cm.Total())
	}
	// An unseen key may collide into nonzero cells but must never make
	// the sketch report less than zero... i.e. this must not panic and
	// the bound must hold: estimate ≤ total.
	if got := cm.Estimate(0xdeadbeef); got > cm.Total() {
		t.Fatalf("unseen key estimate %d exceeds total %d", got, cm.Total())
	}
}

// TestCountMinMergeEqualsConcat is the mergeability law: for the plain
// update rule, merging the sketches of two streams is cell-for-cell
// identical to sketching the concatenated stream.
func TestCountMinMergeEqualsConcat(t *testing.T) {
	for _, seed := range []int64{5, 6, 7} {
		a := NewCountMin(512, 4)
		b := NewCountMin(512, 4)
		whole := NewCountMin(512, 4)
		sa, _ := zipfStream(seed, 15000, 4096, 1.25)
		sb, _ := zipfStream(seed+100, 12000, 4096, 1.4)
		for _, k := range sa {
			a.Add(k, 1)
			whole.Add(k, 1)
		}
		for _, k := range sb {
			b.Add(k, 1)
			whole.Add(k, 1)
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if a.Total() != whole.Total() {
			t.Fatalf("seed %d: merged total %d != concat total %d", seed, a.Total(), whole.Total())
		}
		for i := range a.rows {
			if a.rows[i] != whole.rows[i] {
				t.Fatalf("seed %d: cell %d diverges: merged %d, concat %d",
					seed, i, a.rows[i], whole.rows[i])
			}
		}
	}
}

// TestCountMinConservativeMergeOverestimates: conservative-update
// sketches lose exact merge equality but must keep overestimate-only
// after merging.
func TestCountMinConservativeMergeOverestimates(t *testing.T) {
	a := NewCountMin(256, 4)
	b := NewCountMin(256, 4)
	sa, ta := zipfStream(21, 10000, 2048, 1.3)
	sb, tb := zipfStream(22, 10000, 2048, 1.3)
	for _, k := range sa {
		a.AddConservative(k, 1)
	}
	for _, k := range sb {
		b.AddConservative(k, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for k, want := range ta {
		want += tb[k]
		if got := a.Estimate(k); got < want {
			t.Fatalf("key %#x: merged estimate %d < combined true %d", k, got, want)
		}
	}
}

// TestCountMinMergeMismatchRejected: dimension-mismatched merges fail
// loudly — never panic, never silently misalign.
func TestCountMinMergeMismatchRejected(t *testing.T) {
	a := NewCountMin(256, 4)
	for _, o := range []*CountMin{NewCountMin(512, 4), NewCountMin(256, 5), nil} {
		if err := a.Merge(o); err == nil {
			t.Fatalf("merge with mismatched sketch %+v accepted", o)
		}
	}
}

// TestSpaceSavingTopKGuarantee: any key whose true count exceeds N/C
// must be monitored, and every monitored count must bracket its true
// count in [Count-Err, Count].
func TestSpaceSavingTopKGuarantee(t *testing.T) {
	for _, seed := range []int64{1, 9, 77} {
		const capacity = 64
		ss := NewSpaceSaving(capacity)
		stream, truth := zipfStream(seed, 40000, 1<<14, 1.15)
		for _, k := range stream {
			ss.Add(k, 1, 0)
		}
		if ss.Len() > capacity {
			t.Fatalf("summary grew to %d entries over capacity %d", ss.Len(), capacity)
		}
		n := ss.Total()
		if n != uint64(len(stream)) {
			t.Fatalf("total %d, want %d", n, len(stream))
		}
		threshold := n / capacity
		for k, want := range truth {
			e, ok := ss.Get(k)
			if want > threshold && !ok {
				t.Fatalf("seed %d: key %#x with true count %d > N/C=%d not monitored",
					seed, k, want, threshold)
			}
			if ok {
				if e.Count < want {
					t.Fatalf("seed %d: key %#x count %d < true %d", seed, k, e.Count, want)
				}
				if e.Count-e.Err > want {
					t.Fatalf("seed %d: key %#x lower bound %d > true %d",
						seed, k, e.Count-e.Err, want)
				}
			}
		}
	}
}

// TestSpaceSavingExactUntilEviction: while the summary is below
// capacity every count is exact (Err == 0), and byte weights ride
// along exactly.
func TestSpaceSavingExactUntilEviction(t *testing.T) {
	ss := NewSpaceSaving(8)
	for i := 0; i < 100; i++ {
		ss.Add(uint64(i%5), 1, uint64(10*(i%5)))
	}
	if ss.Evictions() != 0 {
		t.Fatalf("evictions %d below capacity", ss.Evictions())
	}
	for k := uint64(0); k < 5; k++ {
		e, ok := ss.Get(k)
		if !ok || e.Err != 0 || e.ByteErr != 0 {
			t.Fatalf("key %d: entry %+v, want exact", k, e)
		}
		if e.Count != 20 || e.Bytes != uint64(200*k) {
			t.Fatalf("key %d: count %d bytes %d, want 20/%d", k, e.Count, e.Bytes, 200*k)
		}
	}
	top := ss.Top(3)
	if len(top) != 3 {
		t.Fatalf("top(3) returned %d entries", len(top))
	}
	// Equal counts: ties break by ascending key.
	if top[0].Key != 0 || top[1].Key != 1 || top[2].Key != 2 {
		t.Fatalf("tie order wrong: %+v", top)
	}
}

// TestSpaceSavingMergePreservesGuarantee: after merging two summaries
// of disjoint stream halves, the combined N/C guarantee and count
// bracketing still hold.
func TestSpaceSavingMergePreservesGuarantee(t *testing.T) {
	for _, seed := range []int64{3, 31} {
		const capacity = 48
		a := NewSpaceSaving(capacity)
		b := NewSpaceSaving(capacity)
		sa, ta := zipfStream(seed, 30000, 1<<13, 1.2)
		sb, tb := zipfStream(seed+1000, 30000, 1<<13, 1.2)
		for _, k := range sa {
			a.Add(k, 1, 2)
		}
		for _, k := range sb {
			b.Add(k, 1, 2)
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if a.Len() > capacity {
			t.Fatalf("merged summary has %d entries over capacity", a.Len())
		}
		n := a.Total()
		if n != uint64(len(sa)+len(sb)) {
			t.Fatalf("merged total %d, want %d", n, len(sa)+len(sb))
		}
		threshold := n / capacity
		for k, want := range ta {
			want += tb[k]
			e, ok := a.Get(k)
			if want > threshold && !ok {
				t.Fatalf("seed %d: merged key %#x with count %d > N/C=%d missing",
					seed, k, want, threshold)
			}
			if ok && (e.Count < want || e.Count-e.Err > want) {
				t.Fatalf("seed %d: merged key %#x bracket [%d, %d] misses true %d",
					seed, k, e.Count-e.Err, e.Count, want)
			}
		}
	}
}

// TestSpaceSavingMergeMismatchRejected mirrors the count-min rule.
func TestSpaceSavingMergeMismatchRejected(t *testing.T) {
	a := NewSpaceSaving(16)
	if err := a.Merge(NewSpaceSaving(32)); err == nil {
		t.Fatal("capacity-mismatched merge accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil merge accepted")
	}
}

// TestSnapshotRoundTrip: marshal → unmarshal reproduces both sketches
// exactly, and the restored count-min still merges with its origin.
func TestSnapshotRoundTrip(t *testing.T) {
	cm := NewCountMin(128, 3)
	ss := NewSpaceSaving(32)
	stream, _ := zipfStream(17, 5000, 1024, 1.3)
	for _, k := range stream {
		cm.Add(k, 1)
		ss.Add(k, 1, 3)
	}
	cb, err := cm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cm2, err := UnmarshalCountMin(cb)
	if err != nil {
		t.Fatal(err)
	}
	if cm2.Total() != cm.Total() || !bytes.Equal(mustMarshal(t, cm2), cb) {
		t.Fatal("count-min round trip diverged")
	}
	if err := cm2.Merge(cm); err != nil {
		t.Fatalf("restored sketch refuses its origin: %v", err)
	}
	sb, err := ss.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ss2, err := UnmarshalSpaceSaving(sb)
	if err != nil {
		t.Fatal(err)
	}
	if ss2.Total() != ss.Total() || ss2.Len() != ss.Len() {
		t.Fatal("space-saving round trip diverged")
	}
	for _, e := range ss.Entries() {
		e2, ok := ss2.Get(e.Key)
		if !ok || e2 != e {
			t.Fatalf("entry %+v became %+v", e, e2)
		}
	}
}

// TestSnapshotRejectsCorruption: truncation, magic damage and
// dimension lies all fail decode without panicking.
func TestSnapshotRejectsCorruption(t *testing.T) {
	cm := NewCountMin(64, 2)
	cm.Add(1, 5)
	blob := mustMarshal(t, cm)
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)-3] },    // truncated body
		func(b []byte) []byte { b[0] ^= 0xff; return b }, // wrong magic
		func(b []byte) []byte { b[4] = 3; return b },     // non-pow2 width
		func(b []byte) []byte { b[12] = 0; return b },    // zero depth
		func(b []byte) []byte { b[20] = 0; return b },    // total < row sums
		func(b []byte) []byte { return b[:10] },          // truncated header
	} {
		if _, err := UnmarshalCountMin(mutate(append([]byte(nil), blob...))); err == nil {
			t.Fatal("corrupted count-min snapshot accepted")
		}
	}
	ss := NewSpaceSaving(4)
	ss.Add(9, 3, 12)
	sblob, _ := ss.MarshalBinary()
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)-1] },
		func(b []byte) []byte { b[1] ^= 0xff; return b },
		func(b []byte) []byte { b[28] = 200; return b }, // entries > capacity
	} {
		if _, err := UnmarshalSpaceSaving(mutate(append([]byte(nil), sblob...))); err == nil {
			t.Fatal("corrupted space-saving snapshot accepted")
		}
	}
}

func mustMarshal(t *testing.T, c *CountMin) []byte {
	t.Helper()
	b, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
