package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Mergeable snapshots: a sketch serializes to a self-describing byte
// blob a peer can decode and Merge. Shard nodes summarize their slice
// of the firehose locally and ship snapshots to an aggregator; because
// plain-update count-min merges are exact, the aggregate equals the
// sketch of the whole stream. Dimension checks happen at both decode
// and merge time, so a snapshot from a differently-sized sketch is
// rejected loudly instead of silently misaligning hashes.

const (
	cmMagic = "nCM1"
	ssMagic = "nSS1"
	// maxSnapshotCells caps decoded dimensions so a hostile header
	// cannot demand an absurd allocation before validation.
	maxSnapshotCells = 1 << 28
)

// MarshalBinary encodes the sketch: magic, width, depth, total, cells.
func (c *CountMin) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 4+8*3+len(c.rows)*8)
	out = append(out, cmMagic...)
	out = binary.LittleEndian.AppendUint64(out, c.width)
	out = binary.LittleEndian.AppendUint64(out, uint64(c.depth))
	out = binary.LittleEndian.AppendUint64(out, c.total)
	for _, v := range c.rows {
		out = binary.LittleEndian.AppendUint64(out, v)
	}
	return out, nil
}

// UnmarshalCountMin decodes a snapshot produced by MarshalBinary.
func UnmarshalCountMin(data []byte) (*CountMin, error) {
	if len(data) < 4+8*3 || string(data[:4]) != cmMagic {
		return nil, fmt.Errorf("sketch: not a count-min snapshot")
	}
	width := binary.LittleEndian.Uint64(data[4:])
	depth := binary.LittleEndian.Uint64(data[12:])
	total := binary.LittleEndian.Uint64(data[20:])
	if width < 2 || width > maxSnapshotCells || width&(width-1) != 0 {
		return nil, fmt.Errorf("sketch: snapshot width %d is not a power of two in range", width)
	}
	// Bound each dimension before multiplying — a hostile depth must not
	// overflow the cell count into a small-looking allocation.
	if depth < 1 || depth > 64 || width*depth > maxSnapshotCells {
		return nil, fmt.Errorf("sketch: snapshot dimensions %dx%d out of range", width, depth)
	}
	body := data[28:]
	if uint64(len(body)) != width*depth*8 {
		return nil, fmt.Errorf("sketch: snapshot body %d bytes, want %d", len(body), width*depth*8)
	}
	c := &CountMin{width: width, depth: int(depth), mask: width - 1, total: total}
	c.rows = make([]uint64, width*depth)
	var sum uint64
	for i := range c.rows {
		c.rows[i] = binary.LittleEndian.Uint64(body[i*8:])
		sum += c.rows[i]
	}
	// Each plain Add of weight w adds w to every row, so no row's cell
	// sum can exceed total per row; conservative update only lowers it.
	// A snapshot violating this was corrupted or hand-built.
	if maxRow := c.maxRowSum(); maxRow > total {
		return nil, fmt.Errorf("sketch: snapshot row sum %d exceeds declared total %d", maxRow, total)
	}
	return c, nil
}

func (c *CountMin) maxRowSum() uint64 {
	var max uint64
	for i := 0; i < c.depth; i++ {
		var sum uint64
		for _, v := range c.rows[uint64(i)*c.width : (uint64(i)+1)*c.width] {
			if v > math.MaxUint64-sum {
				return math.MaxUint64 // overflow: certainly > total
			}
			sum += v
		}
		if sum > max {
			max = sum
		}
	}
	return max
}

// MarshalBinary encodes the summary: magic, capacity, total,
// evictions, entry count, entries.
func (s *SpaceSaving) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 4+8*4+len(s.heap)*40)
	out = append(out, ssMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(s.capacity))
	out = binary.LittleEndian.AppendUint64(out, s.total)
	out = binary.LittleEndian.AppendUint64(out, s.evictions)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(s.heap)))
	for _, e := range s.heap {
		out = binary.LittleEndian.AppendUint64(out, e.Key)
		out = binary.LittleEndian.AppendUint64(out, e.Count)
		out = binary.LittleEndian.AppendUint64(out, e.Err)
		out = binary.LittleEndian.AppendUint64(out, e.Bytes)
		out = binary.LittleEndian.AppendUint64(out, e.ByteErr)
	}
	return out, nil
}

// UnmarshalSpaceSaving decodes a snapshot produced by MarshalBinary.
func UnmarshalSpaceSaving(data []byte) (*SpaceSaving, error) {
	if len(data) < 4+8*4 || string(data[:4]) != ssMagic {
		return nil, fmt.Errorf("sketch: not a space-saving snapshot")
	}
	capacity := binary.LittleEndian.Uint64(data[4:])
	total := binary.LittleEndian.Uint64(data[12:])
	evictions := binary.LittleEndian.Uint64(data[20:])
	n := binary.LittleEndian.Uint64(data[28:])
	if capacity < 1 || capacity > maxSnapshotCells {
		return nil, fmt.Errorf("sketch: snapshot capacity %d out of range", capacity)
	}
	if n > capacity {
		return nil, fmt.Errorf("sketch: snapshot has %d entries over capacity %d", n, capacity)
	}
	body := data[36:]
	if uint64(len(body)) != n*40 {
		return nil, fmt.Errorf("sketch: snapshot body %d bytes, want %d", len(body), n*40)
	}
	s := NewSpaceSaving(int(capacity))
	s.total = total
	s.evictions = evictions
	var countSum uint64
	for i := uint64(0); i < n; i++ {
		e := Entry{
			Key:     binary.LittleEndian.Uint64(body[i*40:]),
			Count:   binary.LittleEndian.Uint64(body[i*40+8:]),
			Err:     binary.LittleEndian.Uint64(body[i*40+16:]),
			Bytes:   binary.LittleEndian.Uint64(body[i*40+24:]),
			ByteErr: binary.LittleEndian.Uint64(body[i*40+32:]),
		}
		if e.Err > e.Count || e.ByteErr > e.Bytes {
			return nil, fmt.Errorf("sketch: snapshot entry %d slack exceeds its bound", i)
		}
		if _, dup := s.pos[e.Key]; dup {
			return nil, fmt.Errorf("sketch: snapshot repeats key %#x", e.Key)
		}
		if e.Count > math.MaxUint64-countSum {
			return nil, fmt.Errorf("sketch: snapshot counts overflow")
		}
		countSum += e.Count
		s.heap = append(s.heap, e)
		s.pos[e.Key] = len(s.heap) - 1
		s.siftUp(len(s.heap) - 1)
	}
	return s, nil
}
