package sketch

import (
	"fmt"
	"sort"
)

// Entry is one monitored heavy hitter. Count is an upper bound on the
// item's true count and Count-Err a lower bound; an entry that was
// never evicted has Err == 0 and its Count (and Bytes) are exact.
// Bytes carries a second accumulated weight — per-cluster byte volume
// in the clustering pipeline — with the same upper-bound/slack
// bracketing (Bytes-ByteErr ≤ true ≤ Bytes).
type Entry struct {
	Key     uint64
	Count   uint64
	Err     uint64
	Bytes   uint64
	ByteErr uint64
}

// SpaceSaving is the Metwally-style stream summary: a fixed set of
// counters over the busiest keys. When a new key arrives at capacity,
// the minimum counter is evicted and the newcomer inherits its count
// as slack (Err) — so any key whose true count exceeds Total/Capacity
// is guaranteed monitored, and the summary never grows. Not safe for
// concurrent use.
type SpaceSaving struct {
	capacity  int
	total     uint64
	evictions uint64
	heap      []Entry        // min-heap on Count
	pos       map[uint64]int // key -> heap index
}

// NewSpaceSaving builds a summary with the given counter capacity.
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity < 1 {
		capacity = 1
	}
	return &SpaceSaving{
		capacity: capacity,
		heap:     make([]Entry, 0, capacity),
		pos:      make(map[uint64]int, capacity),
	}
}

// Capacity returns the fixed counter budget.
func (s *SpaceSaving) Capacity() int { return s.capacity }

// Len returns how many keys are currently monitored (≤ Capacity).
func (s *SpaceSaving) Len() int { return len(s.heap) }

// Total returns N, the sum of every count weight added.
func (s *SpaceSaving) Total() uint64 { return s.total }

// Evictions returns how many takeovers have happened — the
// heavy-hitter churn signal the obsv gauges publish.
func (s *SpaceSaving) Evictions() uint64 { return s.evictions }

// MinCount returns the smallest monitored count — the eviction
// threshold an unmonitored key must beat, and the upper bound on any
// unmonitored key's true count once the summary is full.
func (s *SpaceSaving) MinCount() uint64 {
	if len(s.heap) < s.capacity {
		return 0
	}
	return s.heap[0].Count
}

// Add records count weight w (and byte weight b) for key.
func (s *SpaceSaving) Add(key, w, b uint64) {
	s.total += w
	if i, ok := s.pos[key]; ok {
		s.heap[i].Count += w
		s.heap[i].Bytes += b
		s.siftDown(i)
		return
	}
	if len(s.heap) < s.capacity {
		s.heap = append(s.heap, Entry{Key: key, Count: w, Bytes: b})
		s.pos[key] = len(s.heap) - 1
		s.siftUp(len(s.heap) - 1)
		return
	}
	// Takeover: the newcomer replaces the minimum counter, inheriting
	// its count (and bytes) as both ballast and declared slack.
	s.evictions++
	root := &s.heap[0]
	delete(s.pos, root.Key)
	s.pos[key] = 0
	*root = Entry{
		Key:     key,
		Count:   root.Count + w,
		Err:     root.Count,
		Bytes:   root.Bytes + b,
		ByteErr: root.Bytes,
	}
	s.siftDown(0)
}

// Get returns the monitored entry for key, if present.
func (s *SpaceSaving) Get(key uint64) (Entry, bool) {
	if i, ok := s.pos[key]; ok {
		return s.heap[i], true
	}
	return Entry{}, false
}

// Entries returns every monitored entry in unspecified order.
func (s *SpaceSaving) Entries() []Entry {
	return append([]Entry(nil), s.heap...)
}

// Top returns the k largest entries by Count (descending), ties broken
// by ascending key so the order is total and stable.
func (s *SpaceSaving) Top(k int) []Entry {
	out := append([]Entry(nil), s.heap...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Merge folds o into s. Both summaries must have equal capacity —
// merging across mismatched budgets would weaken the N/C guarantee of
// the smaller side silently, so it is rejected loudly instead. Matched
// keys sum their counts and slacks; a key monitored on only one side
// additionally inherits the other side's MinCount as slack (its count
// there is unknown but bounded by that minimum). The result keeps the
// top Capacity entries, preserving the merged guarantee: any key with
// true combined count > (Na+Nb)/Capacity stays monitored.
func (s *SpaceSaving) Merge(o *SpaceSaving) error {
	if o == nil {
		return fmt.Errorf("sketch: merge with nil space-saving summary")
	}
	if s.capacity != o.capacity {
		return fmt.Errorf("sketch: merge capacity mismatch: %d vs %d", s.capacity, o.capacity)
	}
	sMin, oMin := s.MinCount(), o.MinCount()
	merged := make(map[uint64]Entry, len(s.heap)+len(o.heap))
	for _, e := range s.heap {
		merged[e.Key] = e
	}
	for _, e := range o.heap {
		if m, ok := merged[e.Key]; ok {
			m.Count += e.Count
			m.Err += e.Err
			m.Bytes += e.Bytes
			m.ByteErr += e.ByteErr
			merged[e.Key] = m
		} else {
			// Monitored only in o: its count in s's stream is at most
			// s's minimum counter.
			e.Count += sMin
			e.Err += sMin
			merged[e.Key] = e
		}
	}
	for key := range merged {
		if _, inO := o.pos[key]; !inO {
			m := merged[key]
			m.Count += oMin
			m.Err += oMin
			merged[key] = m
		}
	}
	all := make([]Entry, 0, len(merged))
	for _, e := range merged {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > s.capacity {
		s.evictions += uint64(len(all) - s.capacity)
		all = all[:s.capacity]
	}
	s.heap = s.heap[:0]
	s.pos = make(map[uint64]int, s.capacity)
	for _, e := range all {
		s.heap = append(s.heap, e)
		s.pos[e.Key] = len(s.heap) - 1
		s.siftUp(len(s.heap) - 1)
	}
	s.total += o.total
	s.evictions += o.evictions
	return nil
}

// Clone returns an independent deep copy.
func (s *SpaceSaving) Clone() *SpaceSaving {
	out := &SpaceSaving{
		capacity:  s.capacity,
		total:     s.total,
		evictions: s.evictions,
		heap:      append(make([]Entry, 0, s.capacity), s.heap...),
		pos:       make(map[uint64]int, s.capacity),
	}
	for k, v := range s.pos {
		out.pos[k] = v
	}
	return out
}

// FootprintBytes returns the fixed memory the summary holds.
func (s *SpaceSaving) FootprintBytes() int {
	const entrySize = 40   // 5 × uint64
	const mapOverhead = 48 // bucket + key/value amortized per entry
	return s.capacity*(entrySize+mapOverhead) + 64
}

func (s *SpaceSaving) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].Count <= s.heap[i].Count {
			return
		}
		s.swap(parent, i)
		i = parent
	}
}

func (s *SpaceSaving) siftDown(i int) {
	n := len(s.heap)
	for {
		least := i
		if l := 2*i + 1; l < n && s.heap[l].Count < s.heap[least].Count {
			least = l
		}
		if r := 2*i + 2; r < n && s.heap[r].Count < s.heap[least].Count {
			least = r
		}
		if least == i {
			return
		}
		s.swap(least, i)
		i = least
	}
}

func (s *SpaceSaving) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i].Key] = i
	s.pos[s.heap[j].Key] = j
}
