package stats

import (
	"math/rand"
	"testing"
)

func TestParetoWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := ParetoWeights(rng, 10000, 1.2)
	if len(w) != 10000 {
		t.Fatalf("len = %d", len(w))
	}
	min, max := w[0], w[0]
	for _, v := range w {
		if v < 1 {
			t.Fatalf("Pareto weight %g below x_m = 1", v)
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	// Heavy tail: the max of 10k draws with alpha 1.2 should dwarf the min.
	if max < 100*min {
		t.Errorf("tail too light: min=%g max=%g", min, max)
	}
}

func TestParetoWeightsAlphaControlsTail(t *testing.T) {
	// Smaller alpha → heavier tail → larger maximum share, on average.
	share := func(alpha float64) float64 {
		rng := rand.New(rand.NewSource(7))
		w := ParetoWeights(rng, 5000, alpha)
		var sum, max float64
		for _, v := range w {
			sum += v
			if v > max {
				max = v
			}
		}
		return max / sum
	}
	if share(1.1) <= share(3.0) {
		t.Errorf("alpha 1.1 share %g should exceed alpha 3.0 share %g", share(1.1), share(3.0))
	}
}

func TestParetoWeightsPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { ParetoWeights(rng, 0, 1.2) },
		func() { ParetoWeights(rng, 5, 0) },
		func() { ParetoWeights(rng, 5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
