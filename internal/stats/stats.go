// Package stats provides the small statistical toolkit the experiments
// need: Zipf-like weight generation (web popularity is Zipf-distributed,
// the paper's Section 3.2.2 observation), cumulative distributions for the
// figure reproductions, histograms, and correlation for the spider/proxy
// arrival-pattern comparison.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ZipfWeights returns n weights proportional to 1/(rank+1)^alpha,
// normalized to sum to 1. Rank 0 is the heaviest. It panics for n <= 0 or
// alpha < 0; callers pass validated experiment parameters.
func ZipfWeights(n int, alpha float64) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("stats: ZipfWeights n=%d", n))
	}
	if alpha < 0 {
		panic(fmt.Sprintf("stats: ZipfWeights alpha=%f", alpha))
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -alpha)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// ParetoWeights draws n independent weights from a continuous Pareto
// distribution with x_m = 1 and the given tail index alpha (> 0). Unlike
// rank-based ZipfWeights, which forces a smooth monotone share profile,
// independent Pareto draws produce what real log populations show: a mass
// of near-minimum shares (single-client clusters, single-request clients)
// alongside a random heavy tail. Feed the result to Apportion. It panics
// on invalid arguments, like ZipfWeights.
func ParetoWeights(rng *rand.Rand, n int, alpha float64) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("stats: ParetoWeights n=%d", n))
	}
	if alpha <= 0 {
		panic(fmt.Sprintf("stats: ParetoWeights alpha=%f", alpha))
	}
	w := make([]float64, n)
	for i := range w {
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12 // bound the tail so one draw cannot own the universe
		}
		w[i] = math.Pow(u, -1/alpha)
	}
	return w
}

// Apportion splits total into n integer shares proportional to weights,
// guaranteeing every share ≥ min and the shares summing exactly to total
// (largest-remainder rounding). It returns an error when the constraints
// are unsatisfiable (total < n*min).
func Apportion(total int, weights []float64, min int) ([]int, error) {
	n := len(weights)
	if total < n*min {
		return nil, fmt.Errorf("stats: cannot apportion %d into %d shares of at least %d", total, n, min)
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	spare := total - n*min
	shares := make([]int, n)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	assigned := 0
	for i, w := range weights {
		exact := float64(spare) * w / wsum
		fl := int(exact)
		shares[i] = min + fl
		assigned += fl
		rems[i] = rem{i, exact - float64(fl)}
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].idx < rems[j].idx // deterministic tie-break
	})
	for k := 0; k < spare-assigned; k++ {
		shares[rems[k%n].idx]++
	}
	return shares, nil
}

// Point is one (x, y) sample of a distribution curve.
type Point struct {
	X, Y float64
}

// CDF returns the empirical cumulative distribution of values: for each
// distinct value v (ascending), the fraction of values ≤ v. This is the
// form of Figure 3 in the paper.
func CDF(values []int) []Point {
	if len(values) == 0 {
		return nil
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	var out []Point
	n := float64(len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		out = append(out, Point{X: float64(sorted[i]), Y: float64(j) / n})
		i = j
	}
	return out
}

// Summary holds the moments and extremes of an integer sample.
type Summary struct {
	N        int
	Min, Max int
	Sum      int64
	Mean     float64
	Median   float64
	Variance float64 // population variance
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(values []int) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{N: len(values), Min: values[0], Max: values[0]}
	for _, v := range values {
		s.Sum += int64(v)
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = float64(s.Sum) / float64(s.N)
	var ss float64
	for _, v := range values {
		d := float64(v) - s.Mean
		ss += d * d
	}
	s.Variance = ss / float64(s.N)
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = float64(sorted[mid])
	} else {
		s.Median = (float64(sorted[mid-1]) + float64(sorted[mid])) / 2
	}
	return s
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series. It returns 0 when either series has zero variance (a flat series
// carries no pattern to correlate — the conservative answer for the
// proxy-detection use case) and panics on mismatched lengths, which would
// indicate a bug in the caller's binning.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Bin aggregates event timestamps into fixed-width bins covering
// [0, horizon), returning per-bin counts as floats (ready for Pearson).
// Events outside the horizon are clamped into the edge bins rather than
// dropped so that totals are preserved.
func Bin(times []uint32, horizon uint32, bins int) []float64 {
	if bins <= 0 || horizon == 0 {
		panic(fmt.Sprintf("stats: Bin bins=%d horizon=%d", bins, horizon))
	}
	out := make([]float64, bins)
	width := float64(horizon) / float64(bins)
	for _, t := range times {
		i := int(float64(t) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		out[i]++
	}
	return out
}

// Gini computes the Gini coefficient of a sample — 0 for perfectly even
// shares, approaching 1 when one element holds everything. The spider
// detector uses it to quantify the paper's "uneven distribution of
// requests among hosts within the cluster".
func Gini(values []int) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	var cum, total float64
	for _, v := range sorted {
		total += float64(v)
	}
	if total == 0 {
		return 0
	}
	var lorenz float64
	for _, v := range sorted {
		cum += float64(v)
		lorenz += cum
	}
	// Gini = 1 - 2 * (area under Lorenz curve), trapezoid-free discrete form.
	return 1 - (2*lorenz-total)/(float64(n)*total)
}
