package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(100, 1.0)
	if len(w) != 100 {
		t.Fatalf("len = %d", len(w))
	}
	var sum float64
	for i := range w {
		sum += w[i]
		if i > 0 && w[i] > w[i-1] {
			t.Fatalf("weights must be non-increasing: w[%d]=%g > w[%d]=%g", i, w[i], i-1, w[i-1])
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %g", sum)
	}
	// alpha = 0 is uniform.
	u := ZipfWeights(10, 0)
	for _, v := range u {
		if math.Abs(v-0.1) > 1e-12 {
			t.Fatalf("uniform weight = %g", v)
		}
	}
	// Exact ratio check: w0/w1 = 2^alpha.
	w2 := ZipfWeights(2, 2.0)
	if math.Abs(w2[0]/w2[1]-4.0) > 1e-9 {
		t.Fatalf("ratio = %g, want 4", w2[0]/w2[1])
	}
}

func TestZipfWeightsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { ZipfWeights(0, 1) },
		func() { ZipfWeights(-1, 1) },
		func() { ZipfWeights(5, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestApportion(t *testing.T) {
	shares, err := Apportion(100, ZipfWeights(5, 1.2), 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, s := range shares {
		total += s
		if s < 1 {
			t.Fatalf("share %d = %d < min", i, s)
		}
		if i > 0 && s > shares[i-1] {
			t.Fatalf("shares must be non-increasing for Zipf weights: %v", shares)
		}
	}
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
}

func TestApportionExactSum(t *testing.T) {
	f := func(totalRaw uint16, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		total := int(totalRaw)%10000 + n // ensure total >= n*1
		shares, err := Apportion(total, ZipfWeights(n, 0.9), 1)
		if err != nil {
			return false
		}
		sum := 0
		for _, s := range shares {
			if s < 1 {
				return false
			}
			sum += s
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApportionUnsatisfiable(t *testing.T) {
	if _, err := Apportion(3, ZipfWeights(5, 1), 1); err == nil {
		t.Fatal("expected error when total < n*min")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]int{1, 1, 2, 5, 5, 5})
	want := []Point{{1, 2.0 / 6}, {2, 3.0 / 6}, {5, 1.0}}
	if len(pts) != len(want) {
		t.Fatalf("CDF = %v", pts)
	}
	for i := range pts {
		if pts[i].X != want[i].X || math.Abs(pts[i].Y-want[i].Y) > 1e-12 {
			t.Errorf("CDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(vals []int) bool {
		pts := CDF(vals)
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].Y < pts[i-1].Y {
				return false
			}
		}
		return len(vals) == 0 || pts[len(pts)-1].Y == 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Sum != 10 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("mean/median = %g/%g", s.Mean, s.Median)
	}
	if math.Abs(s.Variance-1.25) > 1e-12 {
		t.Fatalf("variance = %g", s.Variance)
	}
	odd := Summarize([]int{1, 100, 3})
	if odd.Median != 3 {
		t.Fatalf("odd median = %g", odd.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if r := Pearson(a, b); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect positive = %g", r)
	}
	c := []float64{5, 4, 3, 2, 1}
	if r := Pearson(a, c); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect negative = %g", r)
	}
	flat := []float64{7, 7, 7, 7, 7}
	if r := Pearson(a, flat); r != 0 {
		t.Errorf("flat series = %g, want 0", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Errorf("empty = %g", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	Pearson(a, a[:3])
}

func TestBin(t *testing.T) {
	times := []uint32{0, 10, 10, 95, 99}
	got := Bin(times, 100, 10)
	if got[0] != 1 || got[1] != 2 || got[9] != 2 {
		t.Fatalf("Bin = %v", got)
	}
	var total float64
	for _, v := range got {
		total += v
	}
	if total != 5 {
		t.Fatalf("bin total = %g", total)
	}
	// Out-of-horizon events clamp to the last bin.
	over := Bin([]uint32{150}, 100, 10)
	if over[9] != 1 {
		t.Fatalf("clamp = %v", over)
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]int{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Errorf("even shares Gini = %g", g)
	}
	// One host with everything in a large cluster approaches 1.
	skewed := make([]int, 100)
	skewed[0] = 1_000_000
	if g := Gini(skewed); g < 0.98 {
		t.Errorf("extreme skew Gini = %g", g)
	}
	if g := Gini(nil); g != 0 {
		t.Errorf("empty Gini = %g", g)
	}
	if g := Gini([]int{0, 0}); g != 0 {
		t.Errorf("all-zero Gini = %g", g)
	}
	// Gini is scale-invariant.
	a := Gini([]int{1, 2, 3, 4})
	b := Gini([]int{10, 20, 30, 40})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("scale invariance: %g vs %g", a, b)
	}
}
