// Package tracesim simulates traceroute over the ground-truth topology,
// including the paper's two optimizations (Section 3.3):
//
//  1. adaptive probing — one probe per TTL, retried up to q times only when
//     no ICMP reply arrives, instead of a fixed q probes per TTL;
//  2. starting at Max_ttl — a single probe with TTL=30 reaches ~50% of
//     destinations directly (those whose hosts answer UDP probes with ICMP
//     PORT_UNREACHABLE), resolving name and RTT with one packet.
//
// Probe and waiting-time accounting reproduce the paper's claimed savings
// (~90% of probes, ~80% of waiting time).
package tracesim

import (
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
)

// Cost units: a probe that gets an ICMP reply costs one RTT; a probe that
// times out costs a timeout interval, conventionally several RTTs. The
// ratio matters only for the relative savings numbers.
const (
	replyCost   = 1
	timeoutCost = 5
)

// Tracer issues simulated traceroutes from a fixed origin AS.
type Tracer struct {
	world  *inet.Internet
	origin *inet.AS

	// MaxTTL bounds hop exploration; the paper sets 30.
	MaxTTL int
	// ProbesPerTTL is q, the per-TTL probe budget; classic traceroute
	// sends all q unconditionally, the optimized variant stops at the
	// first reply.
	ProbesPerTTL int

	// Accumulated cost over all traces issued through this Tracer.
	Probes   int
	WaitTime int
}

// New returns a tracer with the paper's parameters (Max_ttl=30, q=3).
func New(world *inet.Internet, origin *inet.AS) *Tracer {
	return &Tracer{world: world, origin: origin, MaxTTL: 30, ProbesPerTTL: 3}
}

// Result is the outcome of tracing one destination.
type Result struct {
	// Reached reports whether the destination answered (PORT_UNREACHABLE).
	Reached bool
	// DstName is the destination's reverse name, when it both answered and
	// has one ("traceroute returns the destination IP address, name (if
	// available), and round trip time").
	DstName string
	// ResponsiveHops are the router names that answered TIME_EXCEEDED, in
	// path order. For destinations behind national gateways this ends at
	// the gateway.
	ResponsiveHops []string
	// Probes and WaitTime are this trace's costs.
	Probes   int
	WaitTime int
}

// PathSuffix returns the last n responsive router names on the discovered
// path — the key the paper's traceroute validation matches on ("the last
// few hops (two in our experiments) on the path towards the client"). The
// destination itself is deliberately excluded: its identity is per-host
// and would never match across distinct clients.
func (r Result) PathSuffix(n int) []string {
	ids := r.ResponsiveHops
	if len(ids) > n {
		ids = ids[len(ids)-n:]
	}
	return ids
}

// route fetches the ground-truth path; ok is false for unrouted addresses
// (probes to them burn the full TTL range with no replies).
func (t *Tracer) route(dst netutil.Addr) (inet.Route, bool) {
	return t.world.PathToAddr(t.origin, dst)
}

// dstName resolves the destination's reverse name if its network registers
// one; traceroute prints names alongside addresses when DNS has them.
func (t *Tracer) dstName(dst netutil.Addr) string {
	n, ok := t.world.NetworkOf(dst)
	if !ok || !n.DNSRegistered {
		return dst.String()
	}
	return n.HostName(dst)
}

// Classic runs an unoptimized traceroute: for each TTL starting at 1, send
// exactly q probes; stop when the destination answers or MaxTTL is
// exhausted.
func (t *Tracer) Classic(dst netutil.Addr) Result {
	route, routed := t.route(dst)
	var res Result
	for ttl := 1; ttl <= t.MaxTTL; ttl++ {
		hopIdx := ttl - 1
		var responds, atDst bool
		if routed {
			if hopIdx < len(route.Hops) {
				responds = route.Hops[hopIdx].Responds
			} else {
				atDst = true
				responds = route.DstResponds
			}
		}
		// q probes regardless of the first reply.
		for p := 0; p < t.ProbesPerTTL; p++ {
			res.Probes++
			if responds {
				res.WaitTime += replyCost
			} else {
				res.WaitTime += timeoutCost
			}
		}
		if atDst && responds {
			// PORT_UNREACHABLE: the only signal that ends a classic
			// traceroute early. A silent destination keeps the probes
			// flowing all the way to MaxTTL — traceroute has no way to
			// know it has already walked past the end of the path.
			res.Reached = true
			res.DstName = t.dstName(dst)
			break
		}
		if responds && !atDst {
			res.ResponsiveHops = append(res.ResponsiveHops, route.Hops[hopIdx].Name)
		}
	}
	t.Probes += res.Probes
	t.WaitTime += res.WaitTime
	return res
}

// OptimizedPath discovers the hop path to dst with adaptive probing but
// without the Max_ttl shortcut: validation and self-correction need the
// trailing router hops even when the destination answers directly, because
// path-suffix matching compares routers, not hosts. It is the "phase 2"
// of Optimized, run unconditionally.
func (t *Tracer) OptimizedPath(dst netutil.Addr) Result {
	var res Result
	t.adaptiveWalk(dst, &res)
	t.Probes += res.Probes
	t.WaitTime += res.WaitTime
	return res
}

// Optimized runs the paper's improved traceroute. Phase 1 sends a single
// probe with TTL=MaxTTL: if the destination responds, one probe resolved
// everything. Phase 2 falls back to hop-by-hop with adaptive (1..q)
// probing per TTL, stopping as soon as the silent region is entered a
// second consecutive time... specifically: stop after the destination band
// or when two consecutive TTLs yield no reply and no further hop would
// respond (the gateway-hidden case), bounding wasted probes.
func (t *Tracer) Optimized(dst netutil.Addr) Result {
	route, routed := t.route(dst)
	var res Result

	// Phase 1: single Max_ttl probe.
	res.Probes++
	if routed && route.DstResponds && len(route.Hops) < t.MaxTTL {
		res.WaitTime += replyCost
		res.Reached = true
		res.DstName = t.dstName(dst)
		t.Probes += res.Probes
		t.WaitTime += res.WaitTime
		return res
	}
	res.WaitTime += timeoutCost

	// Phase 2: adaptive hop-by-hop.
	t.adaptiveWalk(dst, &res)
	t.Probes += res.Probes
	t.WaitTime += res.WaitTime
	return res
}

// adaptiveWalk explores the path hop by hop: one probe per TTL, retried up
// to q times only on silence; after two consecutive all-silent TTLs the
// walk gives up (the generated topology hides only path suffixes, so
// silence is terminal).
func (t *Tracer) adaptiveWalk(dst netutil.Addr, res *Result) {
	route, routed := t.route(dst)
	silentTTLs := 0
	for ttl := 1; ttl <= t.MaxTTL && silentTTLs < 2; ttl++ {
		hopIdx := ttl - 1
		var responds, atDst bool
		if routed {
			if hopIdx < len(route.Hops) {
				responds = route.Hops[hopIdx].Responds
			} else {
				atDst = true
				responds = route.DstResponds
			}
		}
		if responds {
			res.Probes++
			res.WaitTime += replyCost
			silentTTLs = 0
			if atDst {
				res.Reached = true
				res.DstName = t.dstName(dst)
				break
			}
			res.ResponsiveHops = append(res.ResponsiveHops, route.Hops[hopIdx].Name)
			continue
		}
		// No reply: retries exhaust the probe budget for this TTL.
		res.Probes += t.ProbesPerTTL
		res.WaitTime += t.ProbesPerTTL * timeoutCost
		silentTTLs++
		if atDst {
			break
		}
	}
}
