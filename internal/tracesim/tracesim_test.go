package tracesim

import (
	"math/rand"
	"testing"

	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
)

func world(t *testing.T) *inet.Internet {
	t.Helper()
	cfg := inet.DefaultConfig()
	cfg.NumASes = 200
	cfg.NumTierOne = 6
	w, err := inet.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func pickNetwork(w *inet.Internet, pred func(*inet.Network) bool) *inet.Network {
	for _, n := range w.Networks {
		if pred(n) {
			return n
		}
	}
	return nil
}

func TestOptimizedReachesOpenHostWithOneProbe(t *testing.T) {
	w := world(t)
	tr := New(w, w.VantageASes()[0])
	n := pickNetwork(w, func(n *inet.Network) bool { return !n.Firewalled && !n.Country.NationalGateway })
	if n == nil {
		t.Fatal("no open network")
	}
	res := tr.Optimized(n.HostAddr(0))
	if !res.Reached {
		t.Fatal("open host must be reached")
	}
	if res.Probes != 1 {
		t.Fatalf("optimized trace to open host used %d probes, want 1", res.Probes)
	}
	if res.DstName == "" {
		t.Fatal("reached destination must carry a name or address")
	}
}

func TestClassicReachesOpenHost(t *testing.T) {
	w := world(t)
	tr := New(w, w.VantageASes()[0])
	n := pickNetwork(w, func(n *inet.Network) bool { return !n.Firewalled && !n.Country.NationalGateway })
	res := tr.Classic(n.HostAddr(0))
	if !res.Reached {
		t.Fatal("classic trace must reach open host")
	}
	// Classic sends q probes per TTL for every hop plus the destination.
	wantMin := tr.ProbesPerTTL * 2
	if res.Probes < wantMin {
		t.Fatalf("classic probes = %d, want ≥ %d", res.Probes, wantMin)
	}
	if len(res.ResponsiveHops) == 0 {
		t.Fatal("classic trace must discover intermediate hops")
	}
}

func TestFirewalledHostFallsBackToPath(t *testing.T) {
	w := world(t)
	tr := New(w, w.VantageASes()[0])
	n := pickNetwork(w, func(n *inet.Network) bool { return n.Firewalled && !n.Country.NationalGateway })
	if n == nil {
		t.Fatal("no firewalled network")
	}
	res := tr.Optimized(n.HostAddr(0))
	if res.Reached {
		t.Fatal("firewalled host must not be reached")
	}
	if len(res.ResponsiveHops) == 0 {
		t.Fatal("fallback must discover the path")
	}
	// The last responsive hop is the network's gateway.
	last := res.ResponsiveHops[len(res.ResponsiveHops)-1]
	if last != n.GatewayName() {
		t.Fatalf("last hop %q, want gateway %q", last, n.GatewayName())
	}
}

func TestNationalGatewayHidesInterior(t *testing.T) {
	w := world(t)
	tr := New(w, w.VantageASes()[0])
	n := pickNetwork(w, func(n *inet.Network) bool { return n.Country.NationalGateway })
	if n == nil {
		t.Fatal("no national-gateway network")
	}
	res := tr.Optimized(n.HostAddr(0))
	if res.Reached {
		t.Fatal("host behind national gateway must not be reached")
	}
	last := res.ResponsiveHops[len(res.ResponsiveHops)-1]
	if last != "natgw."+n.Country.Code+".net" {
		t.Fatalf("last responsive hop %q, want the national gateway", last)
	}
}

func TestPathSuffix(t *testing.T) {
	r := Result{ResponsiveHops: []string{"a", "b", "c"}}
	got := r.PathSuffix(2)
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("PathSuffix = %v", got)
	}
	// Reaching the destination must NOT leak a per-host key into the
	// suffix — suffixes compare routers so same-network clients match.
	reached := Result{ResponsiveHops: []string{"a", "b"}, Reached: true, DstName: "host.example.com"}
	got = reached.PathSuffix(2)
	if len(got) != 2 || got[1] != "b" {
		t.Fatalf("reached PathSuffix = %v", got)
	}
	short := Result{ResponsiveHops: []string{"only"}}
	if got := short.PathSuffix(2); len(got) != 1 || got[0] != "only" {
		t.Fatalf("short PathSuffix = %v", got)
	}
}

func TestSameNetworkSharesSuffixDifferentNetworksDiffer(t *testing.T) {
	w := world(t)
	tr := New(w, w.VantageASes()[1])
	var fw []*inet.Network
	for _, n := range w.Networks {
		if !n.Country.NationalGateway && n.HostCapacity() >= 4 {
			fw = append(fw, n)
		}
		if len(fw) == 2 {
			break
		}
	}
	if len(fw) < 2 {
		t.Fatal("need two probe-able networks")
	}
	a1 := tr.OptimizedPath(fw[0].HostAddr(0)).PathSuffix(2)
	a2 := tr.OptimizedPath(fw[0].HostAddr(1)).PathSuffix(2)
	b := tr.OptimizedPath(fw[1].HostAddr(0)).PathSuffix(2)
	join := func(s []string) string {
		out := ""
		for _, v := range s {
			out += v + "|"
		}
		return out
	}
	if join(a1) != join(a2) {
		t.Fatalf("same network suffixes differ: %v vs %v", a1, a2)
	}
	if join(a1) == join(b) {
		t.Fatalf("different networks share suffix: %v", a1)
	}
}

func TestOptimizedSavesProbesAndTime(t *testing.T) {
	w := world(t)
	rng := rand.New(rand.NewSource(9))
	classic := New(w, w.VantageASes()[0])
	optimized := New(w, w.VantageASes()[0])
	const trials = 400
	reachedDirect := 0
	for i := 0; i < trials; i++ {
		n := w.Networks[rng.Intn(len(w.Networks))]
		dst := n.RandomHost(rng)
		classic.Classic(dst)
		r := optimized.Optimized(dst)
		if r.Reached && r.Probes == 1 {
			reachedDirect++
		}
	}
	probeSaving := 1 - float64(optimized.Probes)/float64(classic.Probes)
	timeSaving := 1 - float64(optimized.WaitTime)/float64(classic.WaitTime)
	if probeSaving < 0.75 {
		t.Errorf("probe saving = %.2f, paper reports ~0.90", probeSaving)
	}
	if timeSaving < 0.60 {
		t.Errorf("time saving = %.2f, paper reports ~0.80", timeSaving)
	}
	directFrac := float64(reachedDirect) / trials
	if directFrac < 0.30 || directFrac > 0.70 {
		t.Errorf("single-probe resolution fraction = %.2f, paper reports ~0.50", directFrac)
	}
}

func TestUnroutedDestination(t *testing.T) {
	w := world(t)
	tr := New(w, w.VantageASes()[0])
	res := tr.Optimized(netutil.MustParseAddr("10.9.9.9"))
	if res.Reached || len(res.ResponsiveHops) != 0 {
		t.Fatalf("unrouted destination: %+v", res)
	}
	if res.Probes == 0 {
		t.Fatal("probing an unrouted destination still costs probes")
	}
	cres := tr.Classic(netutil.MustParseAddr("10.9.9.9"))
	if cres.Reached {
		t.Fatal("classic must not reach unrouted destination")
	}
}

func TestTracerAccumulatesCosts(t *testing.T) {
	w := world(t)
	tr := New(w, w.VantageASes()[0])
	n := w.Networks[0]
	r1 := tr.Optimized(n.HostAddr(0))
	r2 := tr.Optimized(n.HostAddr(1))
	if tr.Probes != r1.Probes+r2.Probes {
		t.Fatalf("tracer probes %d != %d + %d", tr.Probes, r1.Probes, r2.Probes)
	}
	if tr.WaitTime != r1.WaitTime+r2.WaitTime {
		t.Fatalf("tracer wait %d != %d + %d", tr.WaitTime, r1.WaitTime, r2.WaitTime)
	}
}
