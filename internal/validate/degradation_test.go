package validate

import (
	"errors"
	"testing"

	"github.com/netaware/netcluster/internal/dnssim"
	"github.com/netaware/netcluster/internal/netutil"
)

// flakyResolver wraps the pure resolver and fails every Nth lookup with a
// transport error, simulating a resolver behind a lossy network that
// exhausted its retries. It also reports synthetic retry counters.
type flakyResolver struct {
	inner   *dnssim.Resolver
	n       int
	calls   int
	retries int
	opens   int
}

func (f *flakyResolver) Suffix(addr netutil.Addr) (string, bool) {
	s, ok, err := f.SuffixErr(addr)
	return s, ok && err == nil
}

func (f *flakyResolver) SuffixErr(addr netutil.Addr) (string, bool, error) {
	f.calls++
	if f.n > 0 && f.calls%f.n == 0 {
		f.retries += 2 // a demotion implies the retry ladder was spent
		if f.calls%(4*f.n) == 0 {
			f.opens++
		}
		return "", false, errors.New("resolver unreachable")
	}
	s, ok := f.inner.Suffix(addr)
	return s, ok, nil
}

func (f *flakyResolver) DegradationCounters() (int, int, int) {
	return f.retries, f.opens, 0
}

// TestErroringResolverDemotesNotAborts: the fault-aware path completes,
// counts demotions, and the pure-resolver report stays unchanged.
func TestErroringResolverDemotesNotAborts(t *testing.T) {
	p := setup(t)
	sampled := Sample(p.naResult.Clusters, 0.05, 7)
	flaky := &flakyResolver{inner: p.resolver, n: 5}

	rep := Nslookup(p.world, flaky, sampled)
	if rep.SampledClusters != len(sampled) {
		t.Fatalf("run aborted: %d/%d clusters", rep.SampledClusters, len(sampled))
	}
	if rep.Degradation.DemotedClients == 0 {
		t.Fatal("every 5th lookup erred; demotions must be counted")
	}
	if rep.Degradation.Retries == 0 {
		t.Fatal("resolver counters must be charged to the report")
	}
	if !rep.Degradation.Any() {
		t.Fatal("Any() must reflect the recorded degradation")
	}

	// Demoted clients reduce resolvable counts relative to the pure run.
	pure := Nslookup(p.world, p.resolver, sampled)
	if rep.ReachableClients >= pure.ReachableClients {
		t.Fatalf("flaky reachable %d !< pure reachable %d",
			rep.ReachableClients, pure.ReachableClients)
	}
	if pure.Degradation.Any() {
		t.Fatalf("pure resolver must report zero degradation: %+v", pure.Degradation)
	}
}

// TestTracerouteDemotedClientsUsePathFallback: a demoted client is keyed
// by its probed path, as the paper's method prescribes for unresolvable
// names — so a fully-demoted cluster still gets a verdict.
func TestTracerouteDemotedClientsUsePathFallback(t *testing.T) {
	p := setup(t)
	sampled := Sample(p.naResult.Clusters, 0.05, 7)
	dead := &flakyResolver{inner: p.resolver, n: 1} // every lookup errs

	rep := Traceroute(p.world, dead, p.tracer, sampled)
	if rep.SampledClusters != len(sampled) {
		t.Fatal("traceroute run aborted")
	}
	if rep.Degradation.DemotedClients != rep.SampledClients {
		t.Fatalf("all %d clients should be demoted, got %d",
			rep.SampledClients, rep.Degradation.DemotedClients)
	}
	// Every client fell back to path keys; clusters must still mostly
	// pass (the tracer is fault-free here).
	if rep.PassRate() == 0 {
		t.Fatal("path fallback must still produce verdicts")
	}
}

// TestSelectiveCountsDegradation: the selective method shares the same
// demotion semantics.
func TestSelectiveCountsDegradation(t *testing.T) {
	p := setup(t)
	sampled := Sample(p.naResult.Clusters, 0.05, 7)
	flaky := &flakyResolver{inner: p.resolver, n: 3}
	rep := Selective(p.world, flaky, sampled, 0.95)
	if rep.Degradation.DemotedClients == 0 {
		t.Fatal("selective must count demotions")
	}
}
