// Package validate implements the paper's Section 3.3 cluster validation:
// sample a fraction of the identified clusters and test each with
//
//   - the nslookup method: every resolvable client in a cluster must share
//     the non-trivial domain-name suffix with the others; and
//   - the optimized-traceroute method: clients resolve to a name when
//     possible (suffix-matched as above) and otherwise to the last two
//     hops of the probed path, which must match within the cluster.
//
// Because our world is synthetic, the package can also score each cluster
// against ground truth (all clients in one true network), which the paper
// cannot do — experiments report both.
package validate

import (
	"math/rand"
	"sort"
	"strings"

	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/tracesim"
)

// NameResolver yields the non-trivial DNS suffix of a client address, or
// ok == false when the name does not resolve. dnssim.Resolver implements
// it as a pure function; dnswire.SuffixResolver implements it over the
// actual DNS wire protocol.
type NameResolver interface {
	Suffix(addr netutil.Addr) (string, bool)
}

// ErrorResolver is the fault-aware variant: it distinguishes a definitive
// NXDOMAIN (ok == false, err == nil) from a transport failure (err !=
// nil). When a resolver implements it, validation demotes erroring
// clients to "unresolvable" — feeding the traceroute fallback exactly as
// the paper's pipeline treated a timed-out nslookup — instead of
// silently conflating the two, and counts the demotion.
type ErrorResolver interface {
	SuffixErr(addr netutil.Addr) (string, bool, error)
}

// DegradationCounters is implemented by resolvers that track their own
// resilience activity (dnswire.SuffixResolver); validation snapshots it
// around a run so each Report carries the retries and breaker trips it
// caused.
type DegradationCounters interface {
	DegradationCounters() (retries, breakerOpens, fastFails int)
}

// Degradation aggregates the resilience events behind one Report: how
// hard the pipeline had to work to produce its verdicts, and how many
// clients it demoted along the way.
type Degradation struct {
	// DemotedClients counts lookups that failed at the transport layer
	// and were treated as unresolvable.
	DemotedClients int
	// Retries, BreakerOpens and FastFails are the resolver's counters
	// attributable to this run (zero for pure in-process resolvers).
	Retries      int
	BreakerOpens int
	FastFails    int
}

// Any reports whether any degradation was observed.
func (d Degradation) Any() bool {
	return d.DemotedClients > 0 || d.Retries > 0 || d.BreakerOpens > 0 || d.FastFails > 0
}

// resolveSuffix keys one client, demoting transport errors to
// "unresolvable" when the resolver can distinguish them.
func resolveSuffix(resolver NameResolver, a netutil.Addr, deg *Degradation) (string, bool) {
	if er, ok := resolver.(ErrorResolver); ok {
		s, resolved, err := er.SuffixErr(a)
		if err != nil {
			deg.DemotedClients++
			return "", false
		}
		return s, resolved
	}
	return resolver.Suffix(a)
}

// degradationSpan snapshots a resolver's counters and returns a closer
// that charges the delta to the report.
func degradationSpan(resolver NameResolver, rep *Report) func() {
	dc, ok := resolver.(DegradationCounters)
	if !ok {
		return func() {}
	}
	r0, b0, f0 := dc.DegradationCounters()
	return func() {
		r1, b1, f1 := dc.DegradationCounters()
		rep.Degradation.Retries += r1 - r0
		rep.Degradation.BreakerOpens += b1 - b0
		rep.Degradation.FastFails += f1 - f0
	}
}

// Sample draws approximately frac of the clusters (at least one, when any
// exist) uniformly at random but deterministically in seed. The paper
// samples 1%.
func Sample(clusters []*cluster.Cluster, frac float64, seed int64) []*cluster.Cluster {
	if len(clusters) == 0 || frac <= 0 {
		return nil
	}
	k := int(float64(len(clusters)) * frac)
	if k < 1 {
		k = 1
	}
	if k > len(clusters) {
		k = len(clusters)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(clusters))[:k]
	sort.Ints(idx)
	out := make([]*cluster.Cluster, k)
	for i, j := range idx {
		out[i] = clusters[j]
	}
	return out
}

// ClusterVerdict is the validation outcome for one sampled cluster.
type ClusterVerdict struct {
	Cluster *cluster.Cluster
	// Pass is the method's verdict: no detected suffix disagreement.
	Pass bool
	// Resolvable counts clients the method could key (for nslookup: names
	// resolved; for traceroute: always all clients).
	Resolvable int
	// NonUS reports whether the cluster's clients sit outside the US
	// (ground truth), for the paper's non-US failure breakdown.
	NonUS bool
	// TrulyCorrect is the ground-truth verdict: every client in one true
	// network. Unavailable to the paper; exact here.
	TrulyCorrect bool
}

// Report aggregates verdicts into Table 3's rows.
type Report struct {
	Method             string
	SampledClusters    int
	SampledClients     int
	ReachableClients   int
	Misidentified      int
	MisidentifiedNonUS int
	TrulyIncorrect     int
	Verdicts           []ClusterVerdict
	// Degradation records the resilience events (demotions, retries,
	// breaker activity) behind this report's verdicts.
	Degradation Degradation
}

// PassRate is the fraction of sampled clusters passing the method's test.
func (r Report) PassRate() float64 {
	if r.SampledClusters == 0 {
		return 0
	}
	return 1 - float64(r.Misidentified)/float64(r.SampledClusters)
}

// clientsOf returns a cluster's clients in deterministic order.
func clientsOf(c *cluster.Cluster) []netutil.Addr {
	out := make([]netutil.Addr, 0, len(c.Clients))
	for a := range c.Clients {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// groundTruth fills the NonUS and TrulyCorrect fields from the world.
func groundTruth(world *inet.Internet, c *cluster.Cluster, v *ClusterVerdict) {
	nets := make(map[int]struct{})
	for _, a := range clientsOf(c) {
		n, ok := world.NetworkOf(a)
		if !ok {
			v.TrulyCorrect = false
			return
		}
		nets[n.ID] = struct{}{}
		if n.Country.Code != "us" {
			v.NonUS = true
		}
	}
	v.TrulyCorrect = len(nets) == 1
}

// Nslookup validates sampled clusters with the DNS suffix test. A cluster
// fails when two resolvable clients carry different non-trivial suffixes;
// clusters with fewer than two resolvable clients cannot be falsified and
// pass, as in the paper's methodology.
func Nslookup(world *inet.Internet, resolver NameResolver, sampled []*cluster.Cluster) (rep Report) {
	rep = Report{Method: "nslookup", SampledClusters: len(sampled)}
	defer degradationSpan(resolver, &rep)()
	for _, c := range sampled {
		v := ClusterVerdict{Cluster: c, Pass: true}
		var suffix string
		for _, a := range clientsOf(c) {
			rep.SampledClients++
			s, ok := resolveSuffix(resolver, a, &rep.Degradation)
			if !ok {
				continue
			}
			rep.ReachableClients++
			v.Resolvable++
			if suffix == "" {
				suffix = s
			} else if s != suffix {
				v.Pass = false
			}
		}
		groundTruth(world, c, &v)
		if !v.Pass {
			rep.Misidentified++
			if v.NonUS {
				rep.MisidentifiedNonUS++
			}
		}
		if !v.TrulyCorrect {
			rep.TrulyIncorrect++
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	return rep
}

// Traceroute validates sampled clusters with the optimized-traceroute
// test: clients whose names resolve are suffix-matched on names; the rest
// are matched on the last two hops of the probed path. Either group
// disagreeing fails the cluster.
func Traceroute(world *inet.Internet, resolver NameResolver, tracer *tracesim.Tracer, sampled []*cluster.Cluster) (rep Report) {
	rep = Report{Method: "traceroute", SampledClusters: len(sampled)}
	defer degradationSpan(resolver, &rep)()
	for _, c := range sampled {
		v := ClusterVerdict{Cluster: c, Pass: true}
		var nameSuffix, pathSuffix string
		for _, a := range clientsOf(c) {
			rep.SampledClients++
			rep.ReachableClients++ // traceroute keys every client
			v.Resolvable++
			if s, ok := resolveSuffix(resolver, a, &rep.Degradation); ok {
				if nameSuffix == "" {
					nameSuffix = s
				} else if s != nameSuffix {
					v.Pass = false
				}
				continue
			}
			key := strings.Join(tracer.OptimizedPath(a).PathSuffix(2), "|")
			if pathSuffix == "" {
				pathSuffix = key
			} else if key != pathSuffix {
				v.Pass = false
			}
		}
		groundTruth(world, c, &v)
		if !v.Pass {
			rep.Misidentified++
			if v.NonUS {
				rep.MisidentifiedNonUS++
			}
		}
		if !v.TrulyCorrect {
			rep.TrulyIncorrect++
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	return rep
}

// PrefixLen24Share reports how many sampled clusters have a /24 prefix —
// the paper's measure of how often the simple approach's universal-/24
// assumption holds (48.6% on Nagano, hence "fails in over 50% of cases").
func PrefixLen24Share(sampled []*cluster.Cluster) (count int, share float64) {
	for _, c := range sampled {
		if c.Prefix.Bits() == 24 {
			count++
		}
	}
	if len(sampled) > 0 {
		share = float64(count) / float64(len(sampled))
	}
	return count, share
}

// PrefixLenRange returns the min and max prefix lengths among sampled
// clusters (Table 3's "Prefix length range" row).
func PrefixLenRange(sampled []*cluster.Cluster) (min, max int) {
	if len(sampled) == 0 {
		return 0, 0
	}
	min, max = sampled[0].Prefix.Bits(), sampled[0].Prefix.Bits()
	for _, c := range sampled[1:] {
		b := c.Prefix.Bits()
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	return min, max
}

// SelectiveReport relaxes the strict all-clients test: a cluster passes
// when at least threshold of its keyed clients agree with the cluster's
// majority key. The paper sketches this as future work ("if 95% of the
// clients inside the cluster are correctly identified, we could consider
// this cluster to be correct").
func Selective(world *inet.Internet, resolver NameResolver, sampled []*cluster.Cluster, threshold float64) (rep Report) {
	rep = Report{Method: "selective-nslookup", SampledClusters: len(sampled)}
	defer degradationSpan(resolver, &rep)()
	for _, c := range sampled {
		v := ClusterVerdict{Cluster: c, Pass: true}
		counts := map[string]int{}
		keyed := 0
		for _, a := range clientsOf(c) {
			rep.SampledClients++
			s, ok := resolveSuffix(resolver, a, &rep.Degradation)
			if !ok {
				continue
			}
			rep.ReachableClients++
			v.Resolvable++
			counts[s]++
			keyed++
		}
		if keyed > 0 {
			best := 0
			for _, n := range counts {
				if n > best {
					best = n
				}
			}
			v.Pass = float64(best)/float64(keyed) >= threshold
		}
		groundTruth(world, c, &v)
		if !v.Pass {
			rep.Misidentified++
			if v.NonUS {
				rep.MisidentifiedNonUS++
			}
		}
		if !v.TrulyCorrect {
			rep.TrulyIncorrect++
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	return rep
}
