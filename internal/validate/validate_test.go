package validate

import (
	"testing"

	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/dnssim"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/tracesim"
	"github.com/netaware/netcluster/internal/weblog"
)

// pipeline builds world → views → log → network-aware clustering once for
// the whole test file.
type pipeline struct {
	world    *inet.Internet
	resolver *dnssim.Resolver
	tracer   *tracesim.Tracer
	naResult *cluster.Result
	siResult *cluster.Result
}

var cached *pipeline

func setup(t *testing.T) *pipeline {
	t.Helper()
	if cached != nil {
		return cached
	}
	wcfg := inet.DefaultConfig()
	wcfg.NumASes = 400
	wcfg.NumTierOne = 10
	world, err := inet.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := bgpsim.New(world, bgpsim.DefaultConfig())
	merged := bgpsim.Merge(sim.Collect())
	log, err := weblog.Generate(world, weblog.Nagano(0.02))
	if err != nil {
		t.Fatal(err)
	}
	cached = &pipeline{
		world:    world,
		resolver: dnssim.New(world),
		tracer:   tracesim.New(world, world.VantageASes()[0]),
		naResult: cluster.ClusterLog(log, cluster.NetworkAware{Table: merged}),
		siResult: cluster.ClusterLog(log, cluster.Simple{}),
	}
	return cached
}

func TestSampleDeterministicAndSized(t *testing.T) {
	p := setup(t)
	a := Sample(p.naResult.Clusters, 0.05, 42)
	b := Sample(p.naResult.Clusters, 0.05, 42)
	if len(a) != len(b) {
		t.Fatal("same seed, different sample sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different samples")
		}
	}
	want := int(float64(len(p.naResult.Clusters)) * 0.05)
	if len(a) != want {
		t.Fatalf("sample size = %d, want %d", len(a), want)
	}
	if got := Sample(p.naResult.Clusters, 0.000001, 1); len(got) != 1 {
		t.Fatal("tiny fraction must still sample one cluster")
	}
	if got := Sample(nil, 0.5, 1); got != nil {
		t.Fatal("empty input must sample nothing")
	}
	if got := Sample(p.naResult.Clusters, 10.0, 1); len(got) != len(p.naResult.Clusters) {
		t.Fatal("fraction > 1 must clamp to all clusters")
	}
}

func TestNslookupNetworkAwarePassRate(t *testing.T) {
	p := setup(t)
	sampled := Sample(p.naResult.Clusters, 0.10, 7)
	rep := Nslookup(p.world, p.resolver, sampled)
	if rep.SampledClusters != len(sampled) {
		t.Fatalf("sampled = %d", rep.SampledClusters)
	}
	if rep.PassRate() < 0.85 {
		t.Errorf("network-aware nslookup pass rate = %.3f, paper reports >0.90", rep.PassRate())
	}
	// Roughly half the clients should resolve. The fraction is
	// client-weighted, so at this small scale a handful of big sampled
	// clusters dominate it and the band must be wide; the scale-0.25
	// experiment runs land at ~0.45-0.50.
	frac := float64(rep.ReachableClients) / float64(rep.SampledClients)
	if frac < 0.25 || frac > 0.85 {
		t.Errorf("nslookup reachable fraction = %.2f, paper reports ~0.50", frac)
	}
	if rep.MisidentifiedNonUS > rep.Misidentified {
		t.Error("non-US misidentifications cannot exceed total")
	}
}

func TestTracerouteValidation(t *testing.T) {
	p := setup(t)
	sampled := Sample(p.naResult.Clusters, 0.10, 7)
	rep := Traceroute(p.world, p.resolver, p.tracer, sampled)
	if rep.PassRate() < 0.80 {
		t.Errorf("traceroute pass rate = %.3f, paper reports ~0.90", rep.PassRate())
	}
	// Traceroute keys every sampled client.
	if rep.ReachableClients != rep.SampledClients {
		t.Errorf("traceroute must reach all clients: %d of %d", rep.ReachableClients, rep.SampledClients)
	}
}

func TestPrefixLen24ShareNearPaperValue(t *testing.T) {
	p := setup(t)
	sampled := Sample(p.naResult.Clusters, 0.25, 7)
	count, share := PrefixLen24Share(sampled)
	if count == 0 {
		t.Fatal("no /24 clusters sampled")
	}
	// Paper: 48.6% on Nagano; our worlds put /24 at 50-60% of networks.
	if share < 0.30 || share > 0.80 {
		t.Errorf("/24 share = %.2f, want mid-range", share)
	}
	// Hence the simple approach's assumption fails for the rest.
	if share > 0.95 {
		t.Error("a /24-only world would make the simple approach valid — wrong")
	}
}

func TestPrefixLenRange(t *testing.T) {
	p := setup(t)
	min, max := PrefixLenRange(p.naResult.Clusters)
	if min >= max {
		t.Fatalf("range [%d, %d] degenerate", min, max)
	}
	if min < 8 || max > 32 {
		t.Fatalf("range [%d, %d] outside sane bounds", min, max)
	}
	if a, b := PrefixLenRange(nil); a != 0 || b != 0 {
		t.Error("empty range must be zero")
	}
}

func TestGroundTruthCrossCheck(t *testing.T) {
	// The method verdicts should mostly agree with ground truth: clusters
	// that are truly correct rarely fail, and pass-rate should not wildly
	// exceed true correctness (the test can't see what DNS hides, so some
	// optimism is expected).
	p := setup(t)
	sampled := Sample(p.naResult.Clusters, 0.10, 13)
	rep := Nslookup(p.world, p.resolver, sampled)
	falseFail := 0
	for _, v := range rep.Verdicts {
		if v.TrulyCorrect && !v.Pass {
			falseFail++
		}
	}
	if frac := float64(falseFail) / float64(len(rep.Verdicts)); frac > 0.02 {
		t.Errorf("%.3f of truly-correct clusters failed nslookup; suffix test is broken", frac)
	}
}

func TestSimpleApproachSplitsTrueNetworks(t *testing.T) {
	// The simple approach's clusters are /24 slices; since true networks
	// are often shorter than /24, ground truth says many simple clusters
	// are fragments — they pass suffix tests (fragments are homogeneous)
	// but the cluster count balloons. Check the structural signature.
	p := setup(t)
	if len(p.siResult.Clusters) <= len(p.naResult.Clusters) {
		t.Errorf("simple approach should produce more clusters: %d vs %d",
			len(p.siResult.Clusters), len(p.naResult.Clusters))
	}
	// And simple clusters cap at 256 clients.
	for _, c := range p.siResult.ByClientsDesc()[:1] {
		if c.NumClients() > 256 {
			t.Errorf("simple cluster with %d clients is impossible", c.NumClients())
		}
	}
}

func TestSelectiveThresholdLooserThanStrict(t *testing.T) {
	p := setup(t)
	sampled := Sample(p.naResult.Clusters, 0.10, 7)
	strict := Nslookup(p.world, p.resolver, sampled)
	selective := Selective(p.world, p.resolver, sampled, 0.95)
	if selective.Misidentified > strict.Misidentified {
		t.Errorf("95%% threshold (%d fails) should not fail more than strict (%d)",
			selective.Misidentified, strict.Misidentified)
	}
	allOrNothing := Selective(p.world, p.resolver, sampled, 1.0)
	if allOrNothing.Misidentified != strict.Misidentified {
		t.Errorf("threshold 1.0 (%d) must equal strict (%d)",
			allOrNothing.Misidentified, strict.Misidentified)
	}
}

func TestReportPassRateEdgeCases(t *testing.T) {
	var empty Report
	if empty.PassRate() != 0 {
		t.Error("empty report pass rate must be 0")
	}
}
