package weblog

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/netaware/netcluster/internal/netutil"
)

// Common Log Format support. Lines follow the NCSA combined-ish layout the
// paper's traces use:
//
//	12.65.147.94 - - [13/Feb/1998:06:15:04 +0000] "GET /index.html HTTP/1.0" 200 4521 "-" "Mozilla/4.0"
//
// The trailing referer/user-agent pair is optional on read (plain common
// format) and always written. Only GET requests with numeric sizes matter
// to the clustering and caching pipelines, which is all the generator
// produces; the parser is stricter than real-world Apache but explicit
// about what it rejects.

const clfTimeLayout = "02/Jan/2006:15:04:05 -0700"

// WriteCLF serializes the log in combined log format. Lines are assembled
// into a reused byte buffer with append-style formatting, and the
// timestamp — the one expensive field — is re-rendered only when the
// request's second offset changes, which in a time-sorted log means one
// time.AppendFormat per distinct second rather than per line.
func WriteCLF(w io.Writer, l *Log) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var (
		buf    []byte
		tsBuf  []byte
		lastT  uint32
		haveTS bool
	)
	for i := range l.Requests {
		r := &l.Requests[i]
		res := l.Resources[r.URL]
		agent := "-"
		if int(r.Agent) < len(l.Agents) {
			agent = l.Agents[r.Agent]
		}
		if !haveTS || r.Time != lastT {
			ts := l.Start.Add(time.Duration(r.Time) * time.Second)
			tsBuf = ts.AppendFormat(tsBuf[:0], clfTimeLayout)
			lastT, haveTS = r.Time, true
		}
		buf = r.Client.Append(buf[:0])
		buf = append(buf, " - - ["...)
		buf = append(buf, tsBuf...)
		buf = append(buf, `] "GET `...)
		buf = append(buf, res.Path...)
		buf = append(buf, ` HTTP/1.0" 200 `...)
		buf = strconv.AppendInt(buf, int64(res.Size), 10)
		buf = append(buf, ` "-" "`...)
		buf = append(buf, agent...)
		buf = append(buf, '"', '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("weblog: writing CLF: %w", err)
		}
	}
	writeLines.Add(uint64(len(l.Requests)))
	return bw.Flush()
}

// maybeGzip wraps r with a gzip reader when the stream starts with the
// gzip magic bytes — server logs are customarily stored compressed, and
// forcing callers to decompress first is a paper cut.
func maybeGzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(2)
	if err != nil || len(magic) < 2 || magic[0] != 0x1F || magic[1] != 0x8B {
		return br, nil // not gzip (or too short to be): parse as-is
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("weblog: gzip header detected but unreadable: %w", err)
	}
	return zr, nil
}

// ReadCLF parses a combined/common log format stream into a Log. Gzipped
// input is detected and decompressed transparently. Resource
// and agent tables are interned; request times become offsets from the
// earliest timestamp. Clients logged as 0.0.0.0 (the BOOTP placeholder the
// paper excludes, footnote 6) are dropped here so no downstream stage needs
// to re-check. Malformed lines produce an error with the line number.
func ReadCLF(r io.Reader, name string) (*Log, error) {
	src, err := maybeGzip(r)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	l := &Log{Name: name}
	urlIndex := make(map[string]int32)
	agentIndex := make(map[string]uint16)
	var times []time.Time
	var tc timeCache
	lineno := 0
	var tally parseTally
	defer tally.flush()
	for sc.Scan() {
		lineno++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		tally.bytes += int64(len(line))
		var req Request
		var ts time.Time
		var size int32
		client, fts, pathb, agentb, fsize, fastOK := parseCLFLineFast(line, &tc)
		if fastOK {
			tally.fast++
			req.Client, ts, size = client, fts, fsize
		} else {
			tally.strict++
			var path, agent string
			var err error
			req, ts, path, size, agent, err = parseCLFLine(string(line))
			if err != nil {
				return nil, fmt.Errorf("weblog: line %d: %w", lineno, err)
			}
			pathb, agentb = []byte(path), []byte(agent)
		}
		if req.Client.IsUnspecified() {
			continue
		}
		id, ok := urlIndex[string(pathb)]
		if !ok {
			id = int32(len(l.Resources))
			path := string(pathb)
			urlIndex[path] = id
			l.Resources = append(l.Resources, Resource{Path: path, Size: size})
		} else if l.Resources[id].Size < size {
			// Sizes can vary across responses (updates); keep the largest
			// so byte-hit accounting is stable.
			l.Resources[id].Size = size
		}
		aid, ok := agentIndex[string(agentb)]
		if !ok {
			if len(l.Agents) >= 1<<16-1 {
				return nil, fmt.Errorf("weblog: line %d: more than %d distinct user agents", lineno, 1<<16-1)
			}
			aid = uint16(len(l.Agents))
			agent := string(agentb)
			agentIndex[agent] = aid
			l.Agents = append(l.Agents, agent)
		}
		req.URL = id
		req.Agent = aid
		l.Requests = append(l.Requests, req)
		times = append(times, ts)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("weblog: reading CLF: %w", err)
	}
	if len(l.Requests) == 0 {
		return l, nil
	}
	start, end := times[0], times[0]
	for _, t := range times {
		if t.Before(start) {
			start = t
		}
		if t.After(end) {
			end = t
		}
	}
	l.Start = start
	l.Duration = end.Sub(start)
	for i := range l.Requests {
		l.Requests[i].Time = uint32(times[i].Sub(start) / time.Second)
	}
	l.SortByTime()
	return l, nil
}

// parseCLFLine dissects one line. It returns the partially-filled request
// (client only), the absolute timestamp, path, size and agent.
func parseCLFLine(line string) (Request, time.Time, string, int32, string, error) {
	var req Request
	// host
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return req, time.Time{}, "", 0, "", fmt.Errorf("no fields")
	}
	client, err := parseClient(line[:sp])
	if err != nil {
		return req, time.Time{}, "", 0, "", err
	}
	req.Client = client
	// [timestamp]
	lb := strings.IndexByte(line, '[')
	rb := strings.IndexByte(line, ']')
	if lb < 0 || rb < lb {
		return req, time.Time{}, "", 0, "", fmt.Errorf("missing timestamp brackets")
	}
	ts, err := time.Parse(clfTimeLayout, line[lb+1:rb])
	if err != nil {
		return req, time.Time{}, "", 0, "", fmt.Errorf("bad timestamp: %w", err)
	}
	// "METHOD path proto"
	q1 := strings.IndexByte(line[rb:], '"')
	if q1 < 0 {
		return req, time.Time{}, "", 0, "", fmt.Errorf("missing request quote")
	}
	q1 += rb
	q2 := strings.IndexByte(line[q1+1:], '"')
	if q2 < 0 {
		return req, time.Time{}, "", 0, "", fmt.Errorf("unterminated request")
	}
	q2 += q1 + 1
	reqFields := strings.Fields(line[q1+1 : q2])
	if len(reqFields) < 2 {
		return req, time.Time{}, "", 0, "", fmt.Errorf("malformed request %q", line[q1+1:q2])
	}
	path := reqFields[1]
	// status and size
	rest := strings.Fields(line[q2+1:])
	if len(rest) < 2 {
		return req, time.Time{}, "", 0, "", fmt.Errorf("missing status/size")
	}
	size := int64(0)
	if rest[1] != "-" {
		size, err = strconv.ParseInt(rest[1], 10, 32)
		if err != nil || size < 0 {
			return req, time.Time{}, "", 0, "", fmt.Errorf("bad size %q", rest[1])
		}
	}
	// optional trailing "referer" "agent"
	agent := "-"
	if i := strings.LastIndexByte(line, '"'); i > q2 {
		j := strings.LastIndexByte(line[:i], '"')
		if j > q2 {
			agent = line[j+1 : i]
		}
	}
	return req, ts, path, int32(size), agent, nil
}

// parseClient accepts a dotted-quad address. Hostnames (from logs with
// resolution enabled) are rejected: clustering is defined on IP addresses,
// and silently hashing names to fake addresses would corrupt every result
// downstream.
func parseClient(field string) (netutil.Addr, error) {
	addr, err := netutil.ParseAddr(field)
	if err != nil {
		return 0, fmt.Errorf("bad client %q (hostname-resolved logs are unsupported): %w", field, err)
	}
	return addr, nil
}
