package weblog

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
	"time"
)

func TestCLFRoundTrip(t *testing.T) {
	orig := tinyLog()
	var buf bytes.Buffer
	if err := WriteCLF(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCLF(&buf, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(orig.Requests) {
		t.Fatalf("round trip lost requests: %d vs %d", len(got.Requests), len(orig.Requests))
	}
	st, wantSt := got.Stats(), orig.Stats()
	if st.Requests != wantSt.Requests || st.UniqueClients != wantSt.UniqueClients || st.UniqueURLs != wantSt.UniqueURLs {
		t.Fatalf("stats differ: %+v vs %+v", st, wantSt)
	}
	// CLF carries absolute timestamps only, so the parsed log's Start is
	// the earliest request, not the original nominal start. Compare
	// absolute times per request instead.
	for i := range got.Requests {
		g, w := got.Requests[i], orig.Requests[i]
		gAbs := got.Start.Add(time.Duration(g.Time) * time.Second)
		wAbs := orig.Start.Add(time.Duration(w.Time) * time.Second)
		if g.Client != w.Client || !gAbs.Equal(wAbs) {
			t.Fatalf("request %d: %v@%v vs %v@%v", i, g.Client, gAbs, w.Client, wAbs)
		}
		if got.Resources[g.URL].Path != orig.Resources[w.URL].Path {
			t.Fatalf("request %d path mismatch", i)
		}
		if got.Resources[g.URL].Size != orig.Resources[w.URL].Size {
			t.Fatalf("request %d size mismatch", i)
		}
		if got.Agents[g.Agent] != orig.Agents[w.Agent] {
			t.Fatalf("request %d agent mismatch", i)
		}
	}
}

func TestReadCLFPlainCommonFormat(t *testing.T) {
	// No referer/agent columns at all.
	in := `12.65.147.94 - - [13/Feb/1998:06:15:04 +0000] "GET /index.html HTTP/1.0" 200 4521
24.48.3.87 - - [13/Feb/1998:06:15:05 +0000] "GET /x.gif HTTP/1.0" 304 -
`
	l, err := ReadCLF(strings.NewReader(in), "plain")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Requests) != 2 {
		t.Fatalf("requests = %d", len(l.Requests))
	}
	if l.Agents[l.Requests[0].Agent] != "-" {
		t.Errorf("agent = %q, want placeholder", l.Agents[l.Requests[0].Agent])
	}
	if l.Resources[l.Requests[1].URL].Size != 0 {
		t.Errorf("dash size must parse as 0")
	}
}

func TestReadCLFDropsUnspecifiedClient(t *testing.T) {
	in := `0.0.0.0 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 10
1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] "GET /a HTTP/1.0" 200 10
`
	l, err := ReadCLF(strings.NewReader(in), "bootp")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Requests) != 1 {
		t.Fatalf("0.0.0.0 must be dropped; got %d requests", len(l.Requests))
	}
}

func TestReadCLFErrors(t *testing.T) {
	bad := []string{
		`not-an-ip - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 10`,
		`1.2.3.4 - - 13/Feb/1998 "GET /a HTTP/1.0" 200 10`,
		`1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 notasize`,
		`1.2.3.4 - - [garbage] "GET /a HTTP/1.0" 200 10`,
		`1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GETNOPATH" 200 10`,
		`1.2.3.4`,
	}
	for _, line := range bad {
		if _, err := ReadCLF(strings.NewReader(line+"\n"), "bad"); err == nil {
			t.Errorf("ReadCLF(%q) should fail", line)
		}
	}
}

func TestReadCLFEmptyAndBlank(t *testing.T) {
	l, err := ReadCLF(strings.NewReader("\n\n\n"), "empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Requests) != 0 {
		t.Fatal("blank input must yield empty log")
	}
}

func TestReadCLFGrowingSizeKept(t *testing.T) {
	in := `1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 10
1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] "GET /a HTTP/1.0" 200 500
1.2.3.4 - - [13/Feb/1998:06:15:06 +0000] "GET /a HTTP/1.0" 200 20
`
	l, err := ReadCLF(strings.NewReader(in), "sizes")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Resources) != 1 || l.Resources[0].Size != 500 {
		t.Fatalf("resource size = %d, want max 500", l.Resources[0].Size)
	}
}

func TestReadCLFGzipped(t *testing.T) {
	orig := tinyLog()
	var plain bytes.Buffer
	if err := WriteCLF(&plain, orig); err != nil {
		t.Fatal(err)
	}
	var zipped bytes.Buffer
	zw := gzip.NewWriter(&zipped)
	zw.Write(plain.Bytes())
	zw.Close()

	l, err := ReadCLF(bytes.NewReader(zipped.Bytes()), "gz")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Requests) != len(orig.Requests) {
		t.Fatalf("gzipped read lost requests: %d vs %d", len(l.Requests), len(orig.Requests))
	}
	// Streaming path too.
	n := 0
	if _, err := StreamCLF(bytes.NewReader(zipped.Bytes()), func(StreamRecord) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != len(orig.Requests) {
		t.Fatalf("gzipped stream saw %d records", n)
	}
	// Corrupt gzip header errors cleanly.
	bad := append([]byte{0x1F, 0x8B}, []byte("not really gzip")...)
	if _, err := ReadCLF(bytes.NewReader(bad), "bad"); err == nil {
		t.Fatal("corrupt gzip must error")
	}
}
