package weblog

import (
	"bytes"
	"time"

	"github.com/netaware/netcluster/internal/netutil"
)

// Zero-allocation Common Log Format scanning. parseCLFLineFast dissects
// the canonical layout the generator and real Apache produce — single
// spaces, bracketed timestamp, quoted request — directly from the
// scanner's byte buffer: manual IP and size scanning, a cached timestamp
// parse (log lines are second-granular, so runs of identical timestamp
// text are the common case), and byte-slice results the caller interns.
// Anything the fast scan is not certain about (tabs, collapsed runs of
// whitespace, malformed fields) returns ok=false and the caller re-parses
// the line with the strict string parser, which either handles the
// exotic-but-valid layout or produces the proper positioned error. The
// two parsers must agree on every line the fast path accepts; the
// equivalence tests in fastparse_test.go hold them to that.

// timeCache memoizes the most recent timestamp parse. CLF timestamps have
// one-second resolution and logs are near-chronological, so consecutive
// lines overwhelmingly carry byte-identical timestamp text.
type timeCache struct {
	raw []byte
	t   time.Time
}

var dashBytes = []byte("-")

// parseCLFLineFast is the byte-slice fast path of parseCLFLine. path and
// agent alias line (or dashBytes) and must be interned before the next
// scanner advance.
func parseCLFLineFast(line []byte, tc *timeCache) (client netutil.Addr, ts time.Time, path, agent []byte, size int32, ok bool) {
	// Client address up to the first space.
	sp := bytes.IndexByte(line, ' ')
	if sp <= 0 {
		return
	}
	client, addrOK := netutil.ParseAddrBytes(line[:sp])
	if !addrOK {
		return
	}
	// [timestamp] — same first-'['/first-']' selection as the strict
	// parser (the client field cannot contain brackets).
	lb := bytes.IndexByte(line, '[')
	rb := bytes.IndexByte(line, ']')
	if lb < 0 || rb < lb {
		return
	}
	tsb := line[lb+1 : rb]
	// The empty-timestamp guard matters: an unprimed cache has raw == nil,
	// and bytes.Equal(nil, []byte{}) is true, which would bless "[]" with
	// the zero time while the strict parser rejects it.
	if tc != nil && len(tsb) > 0 && bytes.Equal(tsb, tc.raw) {
		ts = tc.t
	} else {
		t, err := time.Parse(clfTimeLayout, string(tsb))
		if err != nil {
			return
		}
		ts = t
		if tc != nil {
			tc.raw = append(tc.raw[:0], tsb...)
			tc.t = t
		}
	}
	// "METHOD path proto" between the first quote pair after ']'.
	q1 := bytes.IndexByte(line[rb:], '"')
	if q1 < 0 {
		return
	}
	q1 += rb
	q2 := bytes.IndexByte(line[q1+1:], '"')
	if q2 < 0 {
		return
	}
	q2 += q1 + 1
	reqb := line[q1+1 : q2]
	// The strict parser splits the request on any whitespace run — which,
	// via strings.Fields, includes multi-byte Unicode whitespace (U+00A0,
	// U+0085, the U+2000 block). The fast path handles only single ASCII
	// spaces and defers every other whitespace candidate, including any
	// non-ASCII byte: deciding whether it starts a Unicode space would
	// mean decoding UTF-8 here.
	for _, ch := range reqb {
		if ch == '\t' || ch == '\n' || ch == '\v' || ch == '\f' || ch == '\r' || ch >= 0x80 {
			return
		}
	}
	s1 := bytes.IndexByte(reqb, ' ')
	if s1 <= 0 || s1 == len(reqb)-1 {
		return
	}
	rest := reqb[s1+1:]
	if rest[0] == ' ' {
		return // collapsed double space: let strings.Fields decide
	}
	if s2 := bytes.IndexByte(rest, ' '); s2 >= 0 {
		path = rest[:s2]
	} else {
		path = rest
	}
	if len(path) == 0 {
		return
	}
	// Status and size: the second whitespace-delimited token after the
	// request quotes (the strict parser ignores the status value).
	i := q2 + 1
	i = skipSpaces(line, i)
	statusEnd := tokenEnd(line, i)
	if statusEnd < 0 || statusEnd == i {
		return
	}
	i = skipSpaces(line, statusEnd)
	sizeEnd := tokenEnd(line, i)
	if sizeEnd < 0 || sizeEnd == i {
		return
	}
	sizeTok := line[i:sizeEnd]
	if len(sizeTok) == 1 && sizeTok[0] == '-' {
		size = 0
	} else {
		v := int64(0)
		for _, ch := range sizeTok {
			if ch < '0' || ch > '9' {
				return // signs, stray quotes: strict parser decides
			}
			v = v*10 + int64(ch-'0')
			if v > 1<<31-1 {
				return
			}
		}
		size = int32(v)
	}
	// Optional trailing "referer" "agent": identical last-quote selection
	// to the strict parser.
	agent = dashBytes
	if last := bytes.LastIndexByte(line, '"'); last > q2 {
		if j := bytes.LastIndexByte(line[:last], '"'); j > q2 {
			agent = line[j+1 : last]
		}
	}
	ok = true
	return
}

// skipSpaces advances past ' ' runs; tabs and other whitespace are left in
// place so tokenEnd rejects them into the strict path.
func skipSpaces(b []byte, i int) int {
	for i < len(b) && b[i] == ' ' {
		i++
	}
	return i
}

// tokenEnd returns the index one past a run of plain-ASCII token bytes
// starting at i, or -1 when the token contains ASCII whitespace — or any
// non-ASCII byte, which could be part of a Unicode space — that the
// strict parser's strings.Fields would split differently.
func tokenEnd(b []byte, i int) int {
	j := i
	for j < len(b) && b[j] != ' ' {
		if b[j] == '\t' || b[j] == '\n' || b[j] == '\v' || b[j] == '\f' || b[j] == '\r' || b[j] >= 0x80 {
			return -1
		}
		j++
	}
	return j
}
