package weblog

import (
	"strings"
	"testing"
	"time"
)

// corpus of valid CLF lines: canonical layouts the fast path must accept
// plus exotic-but-valid layouts it must hand to the strict parser.
var clfCorpus = []string{
	`12.65.147.94 - - [13/Feb/1998:06:15:04 +0000] "GET /index.html HTTP/1.0" 200 4521 "-" "Mozilla/4.0"`,
	`24.48.3.87 - - [13/Feb/1998:06:15:05 +0000] "GET /x.gif HTTP/1.0" 304 -`,
	`1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] "GET /a HTTP/1.0" 200 0 "-" "-"`,
	`1.2.3.4 frank frank [13/Feb/1998:23:59:59 -0500] "GET /cgi?q=1&r=2 HTTP/1.1" 200 2147483647 "http://ref/" "Agent with spaces/1.0"`,
	`255.255.255.254 - - [01/Jan/1999:00:00:00 +0900] "GET / HTTP/1.0" 200 1`,
	`1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] "GET /a" 200 10`,
	// Fallback layouts: double space in request, tab separators, plus sign.
	`1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] "GET  /double  HTTP/1.0" 200 10`,
	"1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] \"GET /a HTTP/1.0\" 200\t10",
	`1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] "GET /a HTTP/1.0" 200 +10`,
}

// the corpus split: the first fastPathLines are canonical fast-path
// layouts, the rest must defer to the strict parser.
const fastPathLines = 6

// TestFastParseAgreesWithStrict is the contract of the fast path: on every
// line it accepts, its result is byte-identical to the strict parser's.
func TestFastParseAgreesWithStrict(t *testing.T) {
	var tc timeCache
	for _, line := range clfCorpus {
		client, ts, path, agent, size, ok := parseCLFLineFast([]byte(line), &tc)
		req, wantTS, wantPath, wantSize, wantAgent, err := parseCLFLine(line)
		if !ok {
			if err != nil {
				t.Errorf("%q: fast path deferred a line the strict parser rejects: %v", line, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: fast path accepted a line the strict parser rejects: %v", line, err)
			continue
		}
		if client != req.Client || !ts.Equal(wantTS) || string(path) != wantPath ||
			string(agent) != wantAgent || size != wantSize {
			t.Errorf("%q:\nfast   (%v, %v, %q, %q, %d)\nstrict (%v, %v, %q, %q, %d)",
				line, client, ts, path, agent, size,
				req.Client, wantTS, wantPath, wantAgent, wantSize)
		}
	}
}

func TestFastParseAcceptsCanonicalLayouts(t *testing.T) {
	// The generator's own output must stay on the fast path — otherwise the
	// zero-allocation claim silently degrades to the fallback.
	var tc timeCache
	for _, line := range clfCorpus[:fastPathLines] {
		if _, _, _, _, _, ok := parseCLFLineFast([]byte(line), &tc); !ok {
			t.Errorf("canonical line fell off the fast path: %q", line)
		}
	}
}

func TestFastParseDefersAmbiguity(t *testing.T) {
	var tc timeCache
	for _, line := range clfCorpus[fastPathLines:] {
		if _, _, _, _, _, ok := parseCLFLineFast([]byte(line), &tc); ok {
			t.Errorf("ambiguous layout must fall back to the strict parser: %q", line)
		}
	}
}

func TestFastParseRejectsWhatStrictRejects(t *testing.T) {
	// Malformed lines must never be accepted by the fast path (they fall
	// through to the strict parser, which produces the error).
	bad := []string{
		`not-an-ip - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 10`,
		`1.2.3.4 - - 13/Feb/1998 "GET /a HTTP/1.0" 200 10`,
		`1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 notasize`,
		`1.2.3.4 - - [garbage] "GET /a HTTP/1.0" 200 10`,
		`1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GETNOPATH" 200 10`,
		`1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 99999999999`,
		`1.2.3.4`,
	}
	var tc timeCache
	for _, line := range bad {
		if _, _, _, _, _, ok := parseCLFLineFast([]byte(line), &tc); ok {
			t.Errorf("fast path accepted a malformed line: %q", line)
		}
		if _, err := ReadCLF(strings.NewReader(line+"\n"), "bad"); err == nil {
			t.Errorf("ReadCLF(%q) should fail", line)
		}
	}
}

func TestTimeCacheHitAndMiss(t *testing.T) {
	var tc timeCache
	l1 := []byte(`1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 10`)
	l2 := []byte(`1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] "GET /a HTTP/1.0" 200 10`)
	_, t1, _, _, _, ok := parseCLFLineFast(l1, &tc)
	if !ok {
		t.Fatal("fast path rejected canonical line")
	}
	_, t1b, _, _, _, _ := parseCLFLineFast(l1, &tc) // cache hit
	_, t2, _, _, _, _ := parseCLFLineFast(l2, &tc)  // cache miss, new second
	if !t1.Equal(t1b) {
		t.Fatalf("cache hit changed the timestamp: %v vs %v", t1, t1b)
	}
	if got := t2.Sub(t1); got != time.Second {
		t.Fatalf("cache miss parsed wrong: delta = %v", got)
	}
}

func TestStreamCLFZeroAllocSteadyState(t *testing.T) {
	// After the intern tables are warm, streaming canonical lines must not
	// allocate per record.
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString(`12.65.147.94 - - [13/Feb/1998:06:15:04 +0000] "GET /index.html HTTP/1.0" 200 4521 "-" "Mozilla/4.0"` + "\n")
	}
	in := sb.String()
	n := 0
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := StreamCLF(strings.NewReader(in), func(StreamRecord) bool {
			n++
			return true
		}); err != nil {
			t.Fatal(err)
		}
	})
	if n == 0 {
		t.Fatal("no records streamed")
	}
	// Fixed per-call setup (scanner buffer, interner, gzip peek) amortizes
	// to well under one allocation per line; a regression to per-line
	// allocation would push this past 200.
	if allocs > 40 {
		t.Errorf("StreamCLF allocations per 200-line pass = %v, want fixed setup only", allocs)
	}
}
