package weblog

import (
	"strings"
	"testing"
)

// FuzzReadCLF asserts the log parser never panics, and that whatever it
// accepts survives a write/read round trip with identical statistics.
func FuzzReadCLF(f *testing.F) {
	f.Add(`12.65.147.94 - - [13/Feb/1998:06:15:04 +0000] "GET /index.html HTTP/1.0" 200 4521 "-" "Mozilla/4.0"`)
	f.Add(`1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 304 -`)
	f.Add(`0.0.0.0 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 10`)
	f.Add("garbage line")
	f.Add(`1.2.3.4 - - [not-a-date] "GET /a HTTP/1.0" 200 10`)
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		l, err := ReadCLF(strings.NewReader(line+"\n"), "fuzz")
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := WriteCLF(&buf, l); err != nil {
			t.Fatalf("write-back of accepted input failed: %v", err)
		}
		back, err := ReadCLF(strings.NewReader(buf.String()), "fuzz2")
		if err != nil {
			t.Fatalf("re-read of written log failed: %v", err)
		}
		a, b := l.Stats(), back.Stats()
		if a.Requests != b.Requests || a.UniqueClients != b.UniqueClients || a.UniqueURLs != b.UniqueURLs {
			t.Fatalf("round trip changed stats: %+v vs %+v", a, b)
		}
	})
}

// FuzzStreamCLF asserts streaming parse agrees with batch parse on record
// counts for every input both accept.
func FuzzStreamCLF(f *testing.F) {
	f.Add(`1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 10`)
	f.Add(`1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 10
5.6.7.8 - - [13/Feb/1998:06:15:05 +0000] "GET /b HTTP/1.0" 200 20`)
	f.Fuzz(func(t *testing.T, text string) {
		batch, batchErr := ReadCLF(strings.NewReader(text), "b")
		records := 0
		_, streamErr := StreamCLF(strings.NewReader(text), func(StreamRecord) bool {
			records++
			return true
		})
		if (batchErr == nil) != (streamErr == nil) {
			t.Fatalf("accept disagreement: batch=%v stream=%v", batchErr, streamErr)
		}
		if batchErr == nil && records != len(batch.Requests) {
			t.Fatalf("record counts differ: stream %d vs batch %d", records, len(batch.Requests))
		}
	})
}

// FuzzParseCLFLineFast is the differential target for the zero-alloc
// scanner: whenever the fast path accepts a line, the strict parser must
// accept it too and extract identical client, timestamp, path, size, and
// agent fields. The fast path is always allowed to defer (ok=false);
// what it may never do is answer differently. Historical divergence this
// guards: multi-byte Unicode whitespace (U+00A0, U+0085) splits under
// the strict parser's strings.Fields but is token bytes to a byte-wise
// scan, skewing the path or size field unless the fast path defers on
// all non-ASCII bytes.
func FuzzParseCLFLineFast(f *testing.F) {
	for _, line := range clfCorpus {
		f.Add(line)
	}
	// Ambiguity seeds: Unicode whitespace inside the request and in the
	// status/size region, sign and overflow edges, bracket/quote layouts.
	f.Add("1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] \"GET /a\u00a0HTTP/1.0\" 200 10")
	f.Add("1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] \"GET /a HTTP/1.0\" 5\u00a0200 10")
	f.Add("1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] \"GET /a HTTP/1.0\" 200\u008510")
	f.Add("1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] \"GET /\u2002x HTTP/1.0\" 200 10")
	f.Add(`1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] "GET /a HTTP/1.0" 200 2147483648`)
	f.Add(`1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] "GET /a HTTP/1.0" 200 -10`)
	f.Add(`1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] ] "GET /a HTTP/1.0" 200 10`)
	f.Add(`1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] "" 200 10`)
	f.Add(`1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] "GET /a HTTP/1.0" 200 10 "ref"`)
	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsAny(line, "\n\r") {
			return // the scanners only ever see single lines
		}
		var tc timeCache
		client, ts, pathB, agentB, size, ok := parseCLFLineFast([]byte(line), &tc)
		if !ok {
			return // deferring is always allowed
		}
		req, sts, spath, ssize, sagent, err := parseCLFLine(line)
		if err != nil {
			t.Fatalf("fast path accepted a line the strict parser rejects: %q (%v)", line, err)
		}
		if req.Client != client {
			t.Errorf("client: fast %v, strict %v (line %q)", client, req.Client, line)
		}
		if !ts.Equal(sts) {
			t.Errorf("timestamp: fast %v, strict %v (line %q)", ts, sts, line)
		}
		if string(pathB) != spath {
			t.Errorf("path: fast %q, strict %q (line %q)", pathB, spath, line)
		}
		if size != ssize {
			t.Errorf("size: fast %d, strict %d (line %q)", size, ssize, line)
		}
		if string(agentB) != sagent {
			t.Errorf("agent: fast %q, strict %q (line %q)", agentB, sagent, line)
		}
	})
}
