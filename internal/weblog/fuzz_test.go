package weblog

import (
	"strings"
	"testing"
)

// FuzzReadCLF asserts the log parser never panics, and that whatever it
// accepts survives a write/read round trip with identical statistics.
func FuzzReadCLF(f *testing.F) {
	f.Add(`12.65.147.94 - - [13/Feb/1998:06:15:04 +0000] "GET /index.html HTTP/1.0" 200 4521 "-" "Mozilla/4.0"`)
	f.Add(`1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 304 -`)
	f.Add(`0.0.0.0 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 10`)
	f.Add("garbage line")
	f.Add(`1.2.3.4 - - [not-a-date] "GET /a HTTP/1.0" 200 10`)
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		l, err := ReadCLF(strings.NewReader(line+"\n"), "fuzz")
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := WriteCLF(&buf, l); err != nil {
			t.Fatalf("write-back of accepted input failed: %v", err)
		}
		back, err := ReadCLF(strings.NewReader(buf.String()), "fuzz2")
		if err != nil {
			t.Fatalf("re-read of written log failed: %v", err)
		}
		a, b := l.Stats(), back.Stats()
		if a.Requests != b.Requests || a.UniqueClients != b.UniqueClients || a.UniqueURLs != b.UniqueURLs {
			t.Fatalf("round trip changed stats: %+v vs %+v", a, b)
		}
	})
}

// FuzzStreamCLF asserts streaming parse agrees with batch parse on record
// counts for every input both accept.
func FuzzStreamCLF(f *testing.F) {
	f.Add(`1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 10`)
	f.Add(`1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 10
5.6.7.8 - - [13/Feb/1998:06:15:05 +0000] "GET /b HTTP/1.0" 200 20`)
	f.Fuzz(func(t *testing.T, text string) {
		batch, batchErr := ReadCLF(strings.NewReader(text), "b")
		records := 0
		_, streamErr := StreamCLF(strings.NewReader(text), func(StreamRecord) bool {
			records++
			return true
		})
		if (batchErr == nil) != (streamErr == nil) {
			t.Fatalf("accept disagreement: batch=%v stream=%v", batchErr, streamErr)
		}
		if batchErr == nil && records != len(batch.Requests) {
			t.Fatalf("record counts differ: stream %d vs batch %d", records, len(batch.Requests))
		}
	})
}
