package weblog

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/stats"
)

// GenConfig parameterizes a synthetic server log. Defaults (via LogProfile
// constructors below) are tuned so the generated traces match the
// statistical shape the paper reports for its logs: Zipf-like cluster
// sizes and request counts, request distribution more heavy-tailed than
// client distribution, diurnal arrivals, and optional planted spiders and
// proxies.
type GenConfig struct {
	Name        string
	Seed        int64
	NumClients  int
	NumRequests int
	NumURLs     int
	NumNetworks int // distinct ground-truth networks clients come from
	Duration    time.Duration
	Start       time.Time

	ClientZipf  float64 // skew of clients-per-network (paper Fig 3a tail)
	RequestZipf float64 // skew of requests-per-client (heavier, Fig 3b)
	URLZipf     float64 // web resource popularity (classic ~0.8–1.0)
	RepeatProb  float64 // prob. a request repeats one of the client's past URLs

	// Spiders scan large URL ranges at uniform rate, dominating their
	// cluster. SpiderFrac is the fraction of NumRequests issued by EACH
	// spider; SpiderSpan bounds how many distinct URLs a spider sweeps
	// (0 means the whole resource table).
	NumSpiders int
	SpiderFrac float64
	SpiderSpan int
	// Proxies aggregate hidden clients: their arrivals mirror the site's
	// diurnal pattern and their User-Agent field varies per request.
	NumProxies int
	ProxyFrac  float64
}

// Validate checks internal consistency before generation.
func (c *GenConfig) Validate() error {
	switch {
	case c.NumClients <= 0 || c.NumRequests <= 0 || c.NumURLs <= 0 || c.NumNetworks <= 0:
		return fmt.Errorf("weblog: counts must be positive: %+v", *c)
	case c.Duration <= 0:
		return fmt.Errorf("weblog: non-positive duration %v", c.Duration)
	case c.NumClients < c.NumNetworks:
		return fmt.Errorf("weblog: %d clients cannot span %d networks", c.NumClients, c.NumNetworks)
	case float64(c.NumSpiders)*c.SpiderFrac+float64(c.NumProxies)*c.ProxyFrac > 0.8:
		return fmt.Errorf("weblog: spiders+proxies would claim over 80%% of requests")
	}
	return nil
}

// browserAgents is the pool of ordinary 1998-era User-Agent strings.
var browserAgents = []string{
	"Mozilla/4.04 [en] (X11; I; SunOS 5.6 sun4u)",
	"Mozilla/4.0 (compatible; MSIE 4.01; Windows 95)",
	"Mozilla/4.0 (compatible; MSIE 4.01; Windows NT)",
	"Mozilla/3.04 (Macintosh; I; PPC)",
	"Mozilla/4.05 [en] (Win95; I)",
	"Mozilla/4.0 (compatible; MSIE 3.02; Windows 3.1)",
	"Lynx/2.8rel.2 libwww-FM/2.14",
	"Mozilla/4.5 [en] (X11; I; Linux 2.0.36 i686)",
}

const spiderAgent = "ArchitextSpider/1.0"

// Generate synthesizes a server log over the given world. Clients are real
// hosts of ground-truth networks, so the log can be clustered against the
// world's BGP views and validated against its DNS and topology.
func Generate(world *inet.Internet, cfg GenConfig) (*Log, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumNetworks > len(world.Networks) {
		return nil, fmt.Errorf("weblog: config wants %d networks, world has %d", cfg.NumNetworks, len(world.Networks))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &logGen{world: world, cfg: cfg, rng: rng}
	return g.run()
}

type logGen struct {
	world *inet.Internet
	cfg   GenConfig
	rng   *rand.Rand
}

func (g *logGen) run() (*Log, error) {
	l := &Log{
		Name:     g.cfg.Name,
		Start:    g.cfg.Start,
		Duration: g.cfg.Duration,
		Agents:   append([]string(nil), browserAgents...),
		Truth:    &GroundTruth{Spiders: map[netutil.Addr]bool{}, Proxies: map[netutil.Addr]bool{}},
	}
	g.makeResources(l)

	// 1. Pick the client networks and apportion clients across them.
	// Independent Pareto draws (tail index 1/ClientZipf) rather than
	// rank-Zipf weights: real cluster-size distributions have a large mass
	// of single-client clusters next to a heavy tail (the paper's Nagano
	// sizes run from 1 to 1,343).
	networks := g.pickNetworks(g.cfg.NumNetworks)
	clientCounts, err := stats.Apportion(g.cfg.NumClients,
		g.mixedWeights(len(networks), 1/g.cfg.ClientZipf), 1)
	if err != nil {
		return nil, err
	}

	var clients []netutil.Addr
	for i, n := range networks {
		clients = append(clients, g.sampleHosts(n, clientCounts[i])...)
	}

	// 2. Apportion ordinary requests across clients with a heavier tail.
	spiderReq := int(float64(g.cfg.NumRequests) * g.cfg.SpiderFrac * float64(g.cfg.NumSpiders))
	proxyReq := int(float64(g.cfg.NumRequests) * g.cfg.ProxyFrac * float64(g.cfg.NumProxies))
	ordinary := g.cfg.NumRequests - spiderReq - proxyReq
	if ordinary < len(clients) {
		return nil, fmt.Errorf("weblog: only %d ordinary requests for %d clients", ordinary, len(clients))
	}
	reqCounts, err := stats.Apportion(ordinary,
		g.mixedWeights(len(clients), 1/g.cfg.RequestZipf), 1)
	if err != nil {
		return nil, err
	}

	// 3. Emit ordinary client traffic.
	horizon := uint32(g.cfg.Duration / time.Second)
	urlW := newURLSampler(g.rng, g.cfg.NumURLs, g.cfg.URLZipf)
	for i, c := range clients {
		g.emitClient(l, c, reqCounts[i], horizon, urlW)
	}

	// 4. Spiders: small, otherwise-quiet networks; uniform arrival; broad
	// sequential URL scans (Section 4.1.2 and Figure 9(c)).
	for s := 0; s < g.cfg.NumSpiders; s++ {
		n := networks[g.rng.Intn(len(networks))]
		spider := g.sampleHosts(n, 1)[0]
		l.Truth.Spiders[spider] = true
		g.emitSpider(l, spider, int(float64(g.cfg.NumRequests)*g.cfg.SpiderFrac), horizon)
	}

	// 5. Proxies: arrivals mirror the site-wide diurnal pattern; User-Agent
	// varies per request (Section 4.1.2 and Figure 9(b)).
	for p := 0; p < g.cfg.NumProxies; p++ {
		n := networks[g.rng.Intn(len(networks))]
		proxy := g.sampleHosts(n, 1)[0]
		l.Truth.Proxies[proxy] = true
		g.emitProxy(l, proxy, int(float64(g.cfg.NumRequests)*g.cfg.ProxyFrac), horizon, urlW)
	}

	l.SortByTime()
	return l, nil
}

// mixedWeights draws apportioning weights as a mixture: a quarter of the
// population carries near-zero weight (drive-by clients issuing a single
// request; networks contributing a single client — both ubiquitous in real
// logs, where the paper's counts start at 1), the rest follows a Pareto
// tail with the given index.
func (g *logGen) mixedWeights(n int, alpha float64) []float64 {
	w := stats.ParetoWeights(g.rng, n, alpha)
	for i := range w {
		if g.rng.Float64() < 0.25 {
			w[i] = 1e-4 * g.rng.Float64()
		}
	}
	return w
}

// makeResources builds the URL table: lognormal sizes (a few hundred bytes
// to megabytes) and a mixture of immutable and periodically-updated
// resources, which the PCV cache validation needs.
func (g *logGen) makeResources(l *Log) {
	l.Resources = make([]Resource, g.cfg.NumURLs)
	for i := range l.Resources {
		size := int32(math.Exp(g.rng.NormFloat64()*1.3 + 8.5))
		if size < 120 {
			size = 120
		}
		if size > 8<<20 {
			size = 8 << 20
		}
		var period uint32
		if g.rng.Float64() > 0.25 {
			// Updated resources: mean ~6h, exponential.
			period = uint32(g.rng.ExpFloat64()*6*3600 + 600)
		}
		l.Resources[i] = Resource{
			Path:         fmt.Sprintf("/doc/%04d/page%d.html", i/100, i),
			Size:         size,
			ChangePeriod: period,
		}
	}
}

// pickNetworks selects distinct ground-truth networks, favouring none in
// particular (popularity is applied separately via the Zipf apportioning).
func (g *logGen) pickNetworks(k int) []*inet.Network {
	idx := g.rng.Perm(len(g.world.Networks))[:k]
	out := make([]*inet.Network, k)
	for i, j := range idx {
		out[i] = g.world.Networks[j]
	}
	return out
}

// sampleHosts draws count distinct host addresses from a network. When the
// network is smaller than count, every host is used and the remainder is
// dropped — Apportion guarantees counts are ≥1, and tiny networks simply
// contribute fewer clients, as in reality.
func (g *logGen) sampleHosts(n *inet.Network, count int) []netutil.Addr {
	capacity := n.HostCapacity()
	if count > capacity {
		count = capacity
	}
	if count > capacity/2 {
		// Dense: permute all offsets.
		perm := g.rng.Perm(capacity)[:count]
		out := make([]netutil.Addr, count)
		for i, off := range perm {
			out[i] = n.HostAddr(off)
		}
		return out
	}
	// Sparse: rejection-sample distinct offsets.
	seen := make(map[int]struct{}, count)
	out := make([]netutil.Addr, 0, count)
	for len(out) < count {
		off := g.rng.Intn(capacity)
		if _, dup := seen[off]; dup {
			continue
		}
		seen[off] = struct{}{}
		out = append(out, n.HostAddr(off))
	}
	return out
}

// diurnalTime draws an arrival offset in [0, horizon) weighted by a daily
// sinusoid (busy afternoons, quiet nights), by rejection sampling.
func (g *logGen) diurnalTime(horizon uint32) uint32 {
	for {
		t := uint32(g.rng.Int63n(int64(horizon)))
		dayFrac := float64(t%86400) / 86400
		rate := 1 + 0.75*math.Sin(2*math.Pi*(dayFrac-0.3))
		if g.rng.Float64()*1.75 < rate {
			return t
		}
	}
}

// urlSampler draws URL ids from a Zipf(alpha) popularity — P(rank) ∝
// rank^-alpha with the classic web exponent alpha ≈ 0.8 — via inverse-CDF
// sampling (math/rand's Zipf needs s > 1, which would concentrate hits on
// far too few URLs: real logs touch their whole URL space, Breslau et
// al.'s observation the paper cites). A per-site random rank permutation
// keeps URL id order free of popularity signal.
type urlSampler struct {
	rng  *rand.Rand
	cdf  []float64
	perm []int32
}

func newURLSampler(rng *rand.Rand, n int, alpha float64) *urlSampler {
	w := stats.ZipfWeights(n, alpha)
	cdf := make([]float64, n)
	sum := 0.0
	for i, v := range w {
		sum += v
		cdf[i] = sum
	}
	cdf[n-1] = 1 // guard against rounding
	perm := make([]int32, n)
	for i, p := range rng.Perm(n) {
		perm[i] = int32(p)
	}
	return &urlSampler{rng: rng, cdf: cdf, perm: perm}
}

func (u *urlSampler) draw() int32 {
	r := u.rng.Float64()
	i := sort.SearchFloat64s(u.cdf, r)
	if i >= len(u.perm) {
		i = len(u.perm) - 1
	}
	return u.perm[i]
}

// emitClient writes one ordinary client's requests: diurnal arrival times;
// URL choice mixes global popularity with the client's own revisits.
func (g *logGen) emitClient(l *Log, c netutil.Addr, count int, horizon uint32, urls *urlSampler) {
	agent := uint16(g.rng.Intn(len(browserAgents)))
	var history []int32
	for k := 0; k < count; k++ {
		var url int32
		if len(history) > 0 && g.rng.Float64() < g.cfg.RepeatProb {
			url = history[g.rng.Intn(len(history))]
		} else {
			url = urls.draw()
			history = append(history, url)
		}
		l.Requests = append(l.Requests, Request{
			Time:   g.diurnalTime(horizon),
			Client: c,
			URL:    url,
			Agent:  agent,
		})
	}
}

// emitSpider writes a spider's scan: near-uniform arrivals dissociated from
// the diurnal pattern, sweeping sequentially across a large slice of the
// URL space (it visits many URLs exactly once — the anti-cache workload of
// Figure 8(a)).
func (g *logGen) emitSpider(l *Log, spider netutil.Addr, count int, horizon uint32) {
	agentID := g.internAgent(l, spiderAgent)
	span := len(l.Resources)
	if g.cfg.SpiderSpan > 0 && g.cfg.SpiderSpan < span {
		span = g.cfg.SpiderSpan
	}
	start := g.rng.Intn(len(l.Resources))
	for k := 0; k < count; k++ {
		l.Requests = append(l.Requests, Request{
			Time:   uint32(g.rng.Int63n(int64(horizon))),
			Client: spider,
			URL:    int32((start + k%span) % len(l.Resources)),
			Agent:  agentID,
		})
	}
}

// emitProxy writes a proxy's aggregated traffic: the arrival pattern and
// URL popularity mirror the whole site (hidden clients behave like visible
// ones), and the User-Agent changes per request because different hidden
// browsers sit behind it.
func (g *logGen) emitProxy(l *Log, proxy netutil.Addr, count int, horizon uint32, urls *urlSampler) {
	for k := 0; k < count; k++ {
		l.Requests = append(l.Requests, Request{
			Time:   g.diurnalTime(horizon),
			Client: proxy,
			URL:    urls.draw(),
			Agent:  uint16(g.rng.Intn(len(browserAgents))),
		})
	}
}

func (g *logGen) internAgent(l *Log, agent string) uint16 {
	for i, a := range l.Agents {
		if a == agent {
			return uint16(i)
		}
	}
	l.Agents = append(l.Agents, agent)
	return uint16(len(l.Agents) - 1)
}
