package weblog

import (
	"testing"

	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/stats"
)

func testWorld(t *testing.T) *inet.Internet {
	t.Helper()
	cfg := inet.DefaultConfig()
	cfg.NumASes = 250
	cfg.NumTierOne = 8
	w, err := inet.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateNaganoShape(t *testing.T) {
	w := testWorld(t)
	cfg := Nagano(0.02) // ~1.2 K clients, ~233 K requests
	l, err := Generate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Requests != cfg.NumRequests {
		t.Errorf("requests = %d, want %d", st.Requests, cfg.NumRequests)
	}
	// Spiders/proxies may be sampled from networks that already host
	// clients, so unique clients can exceed NumClients by at most
	// NumSpiders+NumProxies and fall short only if host sampling capped.
	if st.UniqueClients < cfg.NumClients*95/100 || st.UniqueClients > cfg.NumClients+5 {
		t.Errorf("clients = %d, want ≈%d", st.UniqueClients, cfg.NumClients)
	}
	if st.UniqueURLs == 0 || st.UniqueURLs > cfg.NumURLs {
		t.Errorf("URLs = %d, table %d", st.UniqueURLs, cfg.NumURLs)
	}
	// Requests sorted by time and within duration.
	horizon := uint32(cfg.Duration.Seconds())
	for i := range l.Requests {
		if i > 0 && l.Requests[i].Time < l.Requests[i-1].Time {
			t.Fatal("requests not sorted")
		}
		if l.Requests[i].Time >= horizon {
			t.Fatalf("request time %d beyond horizon %d", l.Requests[i].Time, horizon)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := testWorld(t)
	a, err := Generate(w, Nagano(0.005))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(w, Nagano(0.005))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("same config, different logs")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestGenerateClientsAreRealHosts(t *testing.T) {
	w := testWorld(t)
	l, err := Generate(w, Nagano(0.005))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range l.Clients() {
		if _, ok := w.NetworkOf(c); !ok {
			t.Fatalf("client %v is not in any ground-truth network", c)
		}
	}
}

func TestGenerateRequestsHeavierTailThanClients(t *testing.T) {
	w := testWorld(t)
	l, err := Generate(w, Nagano(0.02))
	if err != nil {
		t.Fatal(err)
	}
	// Group by ground-truth network and compare skew of the two
	// distributions via their Gini coefficients: requests should be more
	// concentrated than clients (the paper's Fig 3 observation).
	clientsPer := map[int]map[netutil.Addr]struct{}{}
	reqsPer := map[int]int{}
	for i := range l.Requests {
		n, ok := w.NetworkOf(l.Requests[i].Client)
		if !ok {
			t.Fatal("client outside world")
		}
		if clientsPer[n.ID] == nil {
			clientsPer[n.ID] = map[netutil.Addr]struct{}{}
		}
		clientsPer[n.ID][l.Requests[i].Client] = struct{}{}
		reqsPer[n.ID]++
	}
	var cCounts, rCounts []int
	for id := range clientsPer {
		cCounts = append(cCounts, len(clientsPer[id]))
		rCounts = append(rCounts, reqsPer[id])
	}
	gc, gr := stats.Gini(cCounts), stats.Gini(rCounts)
	if gr <= gc {
		t.Errorf("request Gini %.3f should exceed client Gini %.3f", gr, gc)
	}
}

func TestGenerateSpiderBehaviour(t *testing.T) {
	w := testWorld(t)
	cfg := Sun(0.01)
	l, err := Generate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Truth.Spiders) != cfg.NumSpiders || len(l.Truth.Proxies) != cfg.NumProxies {
		t.Fatalf("truth: %d spiders, %d proxies", len(l.Truth.Spiders), len(l.Truth.Proxies))
	}
	var spider netutil.Addr
	for s := range l.Truth.Spiders {
		spider = s
	}
	spiderReqs := 0
	spiderURLs := map[int32]struct{}{}
	for i := range l.Requests {
		if l.Requests[i].Client == spider {
			spiderReqs++
			spiderURLs[l.Requests[i].URL] = struct{}{}
		}
	}
	wantReqs := int(float64(cfg.NumRequests) * cfg.SpiderFrac)
	if spiderReqs != wantReqs {
		t.Errorf("spider issued %d requests, want %d", spiderReqs, wantReqs)
	}
	if len(spiderURLs) > cfg.SpiderSpan {
		t.Errorf("spider touched %d URLs, span is %d", len(spiderURLs), cfg.SpiderSpan)
	}
	// The spider should dominate URL coverage relative to its request
	// share... it must at least touch nearly its whole span.
	if len(spiderURLs) < cfg.SpiderSpan*9/10 && spiderReqs > cfg.SpiderSpan {
		t.Errorf("spider touched only %d of %d URLs in span", len(spiderURLs), cfg.SpiderSpan)
	}
}

func TestGenerateProxyAgentsVary(t *testing.T) {
	w := testWorld(t)
	l, err := Generate(w, Sun(0.01))
	if err != nil {
		t.Fatal(err)
	}
	var proxy netutil.Addr
	for p := range l.Truth.Proxies {
		proxy = p
	}
	agents := map[uint16]struct{}{}
	ordinaryAgents := map[netutil.Addr]map[uint16]struct{}{}
	for i := range l.Requests {
		r := l.Requests[i]
		if r.Client == proxy {
			agents[r.Agent] = struct{}{}
		} else if !l.Truth.Spiders[r.Client] {
			if ordinaryAgents[r.Client] == nil {
				ordinaryAgents[r.Client] = map[uint16]struct{}{}
			}
			ordinaryAgents[r.Client][r.Agent] = struct{}{}
		}
	}
	if len(agents) < 3 {
		t.Errorf("proxy used %d agents, want several", len(agents))
	}
	for c, as := range ordinaryAgents {
		if len(as) != 1 {
			t.Fatalf("ordinary client %v used %d agents, want exactly 1", c, len(as))
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	w := testWorld(t)
	bad := Nagano(0.01)
	bad.NumClients = 0
	if _, err := Generate(w, bad); err == nil {
		t.Error("zero clients must fail")
	}
	bad = Nagano(0.01)
	bad.NumNetworks = bad.NumClients + 1
	if _, err := Generate(w, bad); err == nil {
		t.Error("networks > clients must fail")
	}
	bad = Nagano(0.01)
	bad.Duration = 0
	if _, err := Generate(w, bad); err == nil {
		t.Error("zero duration must fail")
	}
	bad = Nagano(0.01)
	bad.NumSpiders, bad.SpiderFrac = 5, 0.2
	if _, err := Generate(w, bad); err == nil {
		t.Error("spiders claiming all traffic must fail")
	}
	bad = Nagano(0.01)
	bad.NumNetworks = len(w.Networks) + 1
	if _, err := Generate(w, bad); err == nil {
		t.Error("more networks than the world has must fail")
	}
}

func TestProfilesScale(t *testing.T) {
	for _, cfg := range Profiles(0.001) {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s at tiny scale invalid: %v", cfg.Name, err)
		}
		if cfg.NumClients < cfg.NumNetworks {
			t.Errorf("%s: clients %d < networks %d", cfg.Name, cfg.NumClients, cfg.NumNetworks)
		}
	}
	full := Nagano(1.0)
	if full.NumRequests != 11665713 || full.NumClients != 59582 || full.NumURLs != 33875 || full.NumNetworks != 9853 {
		t.Errorf("Nagano(1.0) must match the paper's counts: %+v", full)
	}
}

func TestGenerateDiurnalPattern(t *testing.T) {
	w := testWorld(t)
	l, err := Generate(w, Nagano(0.01))
	if err != nil {
		t.Fatal(err)
	}
	var times []uint32
	for i := range l.Requests {
		times = append(times, l.Requests[i].Time)
	}
	bins := stats.Bin(times, uint32(l.Duration.Seconds()), 24)
	min, max := bins[0], bins[0]
	for _, b := range bins {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if max < 2*min {
		t.Errorf("diurnal variation too flat: min=%g max=%g", min, max)
	}
}
