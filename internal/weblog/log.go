// Package weblog models web server access logs: a compact in-memory
// representation sized for multi-million-request traces, Common Log Format
// parsing and serialization, and a synthetic workload generator that
// reproduces the statistical shape of the paper's logs (Nagano, Apache,
// EW3, Sun) including planted spiders and proxies with ground truth.
package weblog

import (
	"fmt"
	"sort"
	"time"

	"github.com/netaware/netcluster/internal/netutil"
)

// Request is one log line, packed to 16 bytes so the paper's largest traces
// (46 M requests) fit in memory. Resource metadata (path, size) lives in
// the log's Resources table; the user agent in the Agents table.
type Request struct {
	Time   uint32 // seconds since Log.Start
	Client netutil.Addr
	URL    int32  // index into Log.Resources
	Agent  uint16 // index into Log.Agents
	_      uint16 // padding, reserved
}

// Resource is one distinct URL served by the site.
type Resource struct {
	Path string
	Size int32 // response body size in bytes
	// ChangePeriod is the mean interval, in seconds, between modifications
	// of the resource; 0 means the resource never changes. The caching
	// simulation's If-Modified-Since logic derives Last-Modified times
	// from it (see LastModified).
	ChangePeriod uint32
}

// LastModified returns the most recent modification time of the resource
// at or before t (seconds since log start). Immutable resources report 0.
func (r Resource) LastModified(t uint32) uint32 {
	if r.ChangePeriod == 0 {
		return 0
	}
	return t - t%r.ChangePeriod
}

// GroundTruth records what the generator planted, so detection experiments
// can be scored exactly.
type GroundTruth struct {
	Spiders map[netutil.Addr]bool
	Proxies map[netutil.Addr]bool
}

// Log is a complete server log.
type Log struct {
	Name      string
	Start     time.Time
	Duration  time.Duration
	Requests  []Request // sorted by Time
	Resources []Resource
	Agents    []string
	Truth     *GroundTruth // nil for parsed real logs
}

// Stats summarizes a log the way the paper introduces each of its traces.
type Stats struct {
	Requests      int
	UniqueClients int
	UniqueURLs    int
	Duration      time.Duration
}

// Stats computes the summary. UniqueURLs counts resources actually
// requested, not the size of the resource table.
func (l *Log) Stats() Stats {
	clients := make(map[netutil.Addr]struct{})
	urls := make(map[int32]struct{})
	for i := range l.Requests {
		clients[l.Requests[i].Client] = struct{}{}
		urls[l.Requests[i].URL] = struct{}{}
	}
	return Stats{
		Requests:      len(l.Requests),
		UniqueClients: len(clients),
		UniqueURLs:    len(urls),
		Duration:      l.Duration,
	}
}

// Clients returns the distinct client addresses in first-seen order.
func (l *Log) Clients() []netutil.Addr {
	seen := make(map[netutil.Addr]struct{})
	var out []netutil.Addr
	for i := range l.Requests {
		c := l.Requests[i].Client
		if _, dup := seen[c]; !dup {
			seen[c] = struct{}{}
			out = append(out, c)
		}
	}
	return out
}

// SortByTime orders requests chronologically; generators and parsers call
// it before returning a log, and every consumer may rely on the order.
func (l *Log) SortByTime() {
	sort.SliceStable(l.Requests, func(i, j int) bool {
		return l.Requests[i].Time < l.Requests[j].Time
	})
}

// Slice returns a shallow log containing only requests with Time in
// [from, to) seconds, sharing resource and agent tables with l. The paper
// uses this to partition the Nagano log into four 6-hour sessions
// (Section 3.6).
func (l *Log) Slice(from, to uint32) *Log {
	lo := sort.Search(len(l.Requests), func(i int) bool { return l.Requests[i].Time >= from })
	hi := sort.Search(len(l.Requests), func(i int) bool { return l.Requests[i].Time >= to })
	return &Log{
		Name:      fmt.Sprintf("%s[%d:%d)", l.Name, from, to),
		Start:     l.Start.Add(time.Duration(from) * time.Second),
		Duration:  time.Duration(to-from) * time.Second,
		Requests:  l.Requests[lo:hi],
		Resources: l.Resources,
		Agents:    l.Agents,
		Truth:     l.Truth,
	}
}

// Sessions splits the log into n equal-duration consecutive slices.
func (l *Log) Sessions(n int) []*Log {
	if n <= 0 {
		panic(fmt.Sprintf("weblog: Sessions(%d)", n))
	}
	total := uint32(l.Duration / time.Second)
	out := make([]*Log, 0, n)
	for i := 0; i < n; i++ {
		from := total * uint32(i) / uint32(n)
		to := total * uint32(i+1) / uint32(n)
		if i == n-1 {
			to = total + 1 // include the final second
		}
		out = append(out, l.Slice(from, to))
	}
	return out
}

// RequestsByClient groups request indexes per client address.
func (l *Log) RequestsByClient() map[netutil.Addr][]int {
	out := make(map[netutil.Addr][]int)
	for i := range l.Requests {
		c := l.Requests[i].Client
		out[c] = append(out[c], i)
	}
	return out
}
