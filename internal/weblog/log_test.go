package weblog

import (
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/netutil"
)

func addr(s string) netutil.Addr { return netutil.MustParseAddr(s) }

func tinyLog() *Log {
	l := &Log{
		Name:     "tiny",
		Start:    time.Date(1998, 2, 13, 0, 0, 0, 0, time.UTC),
		Duration: 100 * time.Second,
		Resources: []Resource{
			{Path: "/a.html", Size: 100, ChangePeriod: 0},
			{Path: "/b.html", Size: 2000, ChangePeriod: 3600},
		},
		Agents: []string{"UA-1", "UA-2"},
		Requests: []Request{
			{Time: 5, Client: addr("1.2.3.4"), URL: 0, Agent: 0},
			{Time: 10, Client: addr("1.2.3.5"), URL: 1, Agent: 1},
			{Time: 20, Client: addr("1.2.3.4"), URL: 0, Agent: 0},
			{Time: 80, Client: addr("9.9.9.9"), URL: 1, Agent: 0},
		},
	}
	return l
}

func TestLogStats(t *testing.T) {
	st := tinyLog().Stats()
	if st.Requests != 4 || st.UniqueClients != 3 || st.UniqueURLs != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientsFirstSeenOrder(t *testing.T) {
	cs := tinyLog().Clients()
	want := []string{"1.2.3.4", "1.2.3.5", "9.9.9.9"}
	if len(cs) != len(want) {
		t.Fatalf("Clients = %v", cs)
	}
	for i, w := range want {
		if cs[i].String() != w {
			t.Errorf("Clients[%d] = %v, want %s", i, cs[i], w)
		}
	}
}

func TestSlice(t *testing.T) {
	l := tinyLog()
	s := l.Slice(10, 80)
	if len(s.Requests) != 2 {
		t.Fatalf("slice has %d requests", len(s.Requests))
	}
	if s.Requests[0].Time != 10 || s.Requests[1].Time != 20 {
		t.Fatalf("slice contents wrong: %+v", s.Requests)
	}
	if s.Duration != 70*time.Second {
		t.Fatalf("slice duration = %v", s.Duration)
	}
	if &s.Resources[0] != &l.Resources[0] {
		t.Error("slice must share the resource table")
	}
	empty := l.Slice(90, 90)
	if len(empty.Requests) != 0 {
		t.Fatalf("empty slice has %d requests", len(empty.Requests))
	}
}

func TestSessionsPartition(t *testing.T) {
	l := tinyLog()
	sessions := l.Sessions(4)
	if len(sessions) != 4 {
		t.Fatalf("%d sessions", len(sessions))
	}
	total := 0
	for _, s := range sessions {
		total += len(s.Requests)
	}
	if total != len(l.Requests) {
		t.Fatalf("sessions cover %d of %d requests", total, len(l.Requests))
	}
	defer func() {
		if recover() == nil {
			t.Error("Sessions(0) must panic")
		}
	}()
	l.Sessions(0)
}

func TestRequestsByClient(t *testing.T) {
	m := tinyLog().RequestsByClient()
	if len(m[addr("1.2.3.4")]) != 2 || len(m[addr("9.9.9.9")]) != 1 {
		t.Fatalf("RequestsByClient = %v", m)
	}
}

func TestResourceLastModified(t *testing.T) {
	immutable := Resource{ChangePeriod: 0}
	if immutable.LastModified(99999) != 0 {
		t.Error("immutable resource must report epoch 0")
	}
	r := Resource{ChangePeriod: 3600}
	if r.LastModified(3599) != 0 {
		t.Errorf("LastModified(3599) = %d", r.LastModified(3599))
	}
	if r.LastModified(3600) != 3600 {
		t.Errorf("LastModified(3600) = %d", r.LastModified(3600))
	}
	if r.LastModified(7300) != 7200 {
		t.Errorf("LastModified(7300) = %d", r.LastModified(7300))
	}
}

func TestSortByTime(t *testing.T) {
	l := tinyLog()
	l.Requests[0], l.Requests[3] = l.Requests[3], l.Requests[0]
	l.SortByTime()
	for i := 1; i < len(l.Requests); i++ {
		if l.Requests[i].Time < l.Requests[i-1].Time {
			t.Fatal("not sorted")
		}
	}
}
