package weblog

import "github.com/netaware/netcluster/internal/obsv"

// Parser observability. Per-line accounting uses the parseTally pattern:
// plain local ints accumulated inside the read loop, flushed to the
// shared atomic counters exactly once per stream (deferred, so error
// returns flush too). The zero-allocation fast path therefore carries no
// per-line atomic traffic; "weblog.parse.strict" climbing relative to
// "weblog.parse.fast" is the operational signal that a log's layout has
// drifted off the canonical CLF shape.
var (
	parseFast   = obsv.C("weblog.parse.fast")
	parseStrict = obsv.C("weblog.parse.strict")
	parseBytes  = obsv.C("weblog.parse.bytes")
	writeLines  = obsv.C("weblog.write.lines")
)

// parseTally batches per-line parser counts for one stream.
type parseTally struct {
	fast   int
	strict int
	bytes  int64
}

func (t *parseTally) flush() {
	parseFast.Add(uint64(t.fast))
	parseStrict.Add(uint64(t.strict))
	parseBytes.Add(uint64(t.bytes))
}
