package weblog

import (
	"time"
)

// Log profiles mirroring the four traces the paper reports on. Counts at
// scale = 1 match the paper's published numbers where given (Nagano:
// 11,665,713 requests from 59,582 clients over 33,875 URLs in one day;
// Sun: 116,274 URLs with one spider and one suspected proxy; cluster
// totals of Table 4: Apache 35,563 / EW3 24,921 / Sun 33,468). Where the
// paper gives only ranges, the profiles pick values inside them.
//
// Scale proportionally shrinks the population so unit tests and quick
// experiment runs stay fast; the Zipf exponents — which determine every
// distributional conclusion — do not change with scale.

func scaled(v int, scale float64, min int) int {
	s := int(float64(v) * scale)
	if s < min {
		s = min
	}
	return s
}

// Nagano is the paper's primary example: the 1998 Winter Olympics site,
// one day (Feb 13, 1998), a transient-event log with no spiders and a
// single busy suspected proxy (77,311 requests from a one-client cluster).
func Nagano(scale float64) GenConfig {
	return GenConfig{
		Name:        "Nagano",
		Seed:        1998,
		NumClients:  scaled(59582, scale, 200),
		NumRequests: scaled(11665713, scale, 4000),
		NumURLs:     scaled(33875, scale, 120),
		NumNetworks: scaled(9853, scale, 50),
		Duration:    24 * time.Hour,
		Start:       time.Date(1998, 2, 13, 0, 0, 0, 0, time.UTC),
		ClientZipf:  0.75,
		RequestZipf: 0.85,
		URLZipf:     0.80,
		RepeatProb:  0.60,
		NumProxies:  1,
		ProxyFrac:   0.0066, // 77,311 of 11.67 M requests
	}
}

// Apache is a large popular-site log: the biggest cluster population of
// the four traces.
func Apache(scale float64) GenConfig {
	return GenConfig{
		Name:        "Apache",
		Seed:        1999,
		NumClients:  scaled(180000, scale, 400),
		NumRequests: scaled(7200000, scale, 8000),
		NumURLs:     scaled(42000, scale, 150),
		NumNetworks: scaled(35563, scale, 120),
		Duration:    7 * 24 * time.Hour,
		Start:       time.Date(1999, 6, 1, 0, 0, 0, 0, time.UTC),
		ClientZipf:  0.72,
		RequestZipf: 0.86,
		URLZipf:     0.82,
		RepeatProb:  0.55,
		NumSpiders:  1,
		SpiderFrac:  0.02,
		NumProxies:  2,
		ProxyFrac:   0.008,
	}
}

// EW3 (Easy World Wide Web) is the small-site trace: few unique URLs (the
// paper's low end is 340) with a moderate client population.
func EW3(scale float64) GenConfig {
	return GenConfig{
		Name:        "EW3",
		Seed:        2000,
		NumClients:  scaled(110000, scale, 300),
		NumRequests: scaled(2600000, scale, 6000),
		NumURLs:     scaled(340, scale, 60),
		NumNetworks: scaled(24921, scale, 90),
		Duration:    14 * 24 * time.Hour,
		Start:       time.Date(1999, 3, 1, 0, 0, 0, 0, time.UTC),
		ClientZipf:  0.70,
		RequestZipf: 0.84,
		URLZipf:     0.75,
		RepeatProb:  0.55,
		NumProxies:  1,
		ProxyFrac:   0.007,
	}
}

// Sun is the trace with the paper's canonical spider (692,453 requests,
// 4,426 of 116,274 URLs, 99.79% of its cluster's requests) and the
// canonical proxy (323,867 of its cluster's 326,566 requests).
func Sun(scale float64) GenConfig {
	return GenConfig{
		Name:        "Sun",
		Seed:        2001,
		NumClients:  scaled(170000, scale, 400),
		NumRequests: scaled(6400000, scale, 9000),
		NumURLs:     scaled(116274, scale, 200),
		NumNetworks: scaled(33468, scale, 110),
		Duration:    30 * 24 * time.Hour,
		Start:       time.Date(1999, 1, 4, 0, 0, 0, 0, time.UTC),
		ClientZipf:  0.72,
		RequestZipf: 0.85,
		URLZipf:     0.80,
		RepeatProb:  0.55,
		NumSpiders:  1,
		SpiderFrac:  0.108,                   // 692,453 of 6.4 M requests
		SpiderSpan:  scaled(4426, scale, 40), // of 116,274 URLs
		NumProxies:  1,
		ProxyFrac:   0.051, // 323,867 of 6.4 M requests
	}
}

// Profiles returns the four paper traces at the given scale, in the order
// the paper lists them.
func Profiles(scale float64) []GenConfig {
	return []GenConfig{Apache(scale), EW3(scale), Nagano(scale), Sun(scale)}
}
