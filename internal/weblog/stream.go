package weblog

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// Streaming access to Common Log Format data. The paper's largest trace
// has 46 million requests; at 16 bytes per packed request that still fits
// in memory, but the raw CLF text does not always, and clustering —
// which needs only (client, URL id, size, time) per line — can run in one
// pass. StreamCLF parses incrementally and hands each record to a
// callback; cluster.ClusterStream builds on it.

// StreamRecord is one parsed log line plus the interned metadata a
// consumer needs without retaining the line.
type StreamRecord struct {
	Request Request
	// Abs is the absolute timestamp (Request.Time is relative to the
	// stream's first record).
	Abs time.Time
	// Path and Agent reference interned strings valid beyond the callback.
	Path  string
	Agent string
	Size  int32
}

// StreamStats accumulates what a single pass can know.
type StreamStats struct {
	Lines   int // lines parsed (excluding blanks)
	Records int // records delivered (0.0.0.0 clients are dropped)
	URLs    int // distinct URLs interned
	Agents  int // distinct agents interned
	Start   time.Time
	End     time.Time
}

// StreamCLF parses r line by line, invoking fn for every request record.
// Unlike ReadCLF it retains only interning tables, not the records, so
// arbitrarily large logs stream in constant memory (modulo distinct URL
// and agent counts). Request.Time is seconds since the first record's
// timestamp; CLF files are chronological in practice, and records arriving
// out of order carry a clamped offset rather than an error. fn returning
// false stops the stream early without error.
func StreamCLF(r io.Reader, fn func(StreamRecord) bool) (StreamStats, error) {
	src, err := maybeGzip(r)
	if err != nil {
		return StreamStats{}, err
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var st StreamStats
	urlIndex := make(map[string]int32)
	agentIndex := make(map[string]uint16)
	var paths []string
	var agents []string
	var started bool
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		st.Lines++
		req, ts, path, size, agent, err := parseCLFLine(line)
		if err != nil {
			return st, fmt.Errorf("weblog: line %d: %w", st.Lines, err)
		}
		if req.Client.IsUnspecified() {
			continue
		}
		if !started {
			st.Start, started = ts, true
		}
		if ts.After(st.End) {
			st.End = ts
		}
		if ts.Before(st.Start) {
			// Clamp out-of-order records to the stream origin; a one-pass
			// consumer cannot rebase earlier records.
			ts = st.Start
		}
		req.Time = uint32(ts.Sub(st.Start) / time.Second)

		id, ok := urlIndex[path]
		if !ok {
			id = int32(len(urlIndex))
			// Intern the path once so records never alias scanner memory.
			path = strings.Clone(path)
			urlIndex[path] = id
			paths = append(paths, path)
		} else {
			path = paths[id]
		}
		req.URL = id
		aid, ok := agentIndex[agent]
		if !ok {
			if len(agentIndex) >= 1<<16-1 {
				return st, fmt.Errorf("weblog: line %d: more than %d distinct user agents", st.Lines, 1<<16-1)
			}
			aid = uint16(len(agentIndex))
			agent = strings.Clone(agent)
			agentIndex[agent] = aid
			agents = append(agents, agent)
		} else {
			agent = agents[aid]
		}
		req.Agent = aid

		st.Records++
		if !fn(StreamRecord{Request: req, Abs: ts, Path: path, Agent: agent, Size: size}) {
			break
		}
	}
	st.URLs = len(urlIndex)
	st.Agents = len(agentIndex)
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("weblog: streaming CLF: %w", err)
	}
	return st, nil
}
