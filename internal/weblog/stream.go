package weblog

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
)

// Streaming access to Common Log Format data. The paper's largest trace
// has 46 million requests; at 16 bytes per packed request that still fits
// in memory, but the raw CLF text does not always, and clustering —
// which needs only (client, URL id, size, time) per line — can run in one
// pass. StreamCLF parses incrementally and hands each record to a
// callback; cluster.ClusterStream and cluster.ClusterStreamParallel build
// on it.

// StreamRecord is one parsed log line plus the interned metadata a
// consumer needs without retaining the line.
type StreamRecord struct {
	Request Request
	// Abs is the absolute timestamp (Request.Time is relative to the
	// stream's first record).
	Abs time.Time
	// Path and Agent reference interned strings valid beyond the callback.
	Path  string
	Agent string
	Size  int32
}

// StreamStats accumulates what a single pass can know.
type StreamStats struct {
	Lines   int // lines parsed (excluding blanks)
	Records int // records delivered (0.0.0.0 clients are dropped)
	URLs    int // distinct URLs interned
	Agents  int // distinct agents interned
	Start   time.Time
	End     time.Time
}

// StreamCLF parses r line by line, invoking fn for every request record.
// Unlike ReadCLF it retains only interning tables, not the records, so
// arbitrarily large logs stream in constant memory (modulo distinct URL
// and agent counts). Request.Time is seconds since the first record's
// timestamp; CLF files are chronological in practice, and records arriving
// out of order carry a clamped offset rather than an error. fn returning
// false stops the stream early without error.
//
// Parsing runs on the zero-allocation byte fast path (see fastparse.go):
// steady-state lines cost no allocations — the timestamp parse is cached
// across same-second runs and URL/agent strings are interned once — with
// the strict string parser as the fallback for unusual layouts and for
// error reporting.
func StreamCLF(r io.Reader, fn func(StreamRecord) bool) (StreamStats, error) {
	return StreamCLFCtx(context.Background(), r, fn)
}

// StreamCLFCtx is StreamCLF under a trace context: the whole pass
// records one "weblog.stream" span (line/record/byte totals as
// attributes) into the flight recorder. The per-line loop itself stays
// uninstrumented — one span per stream, never per record.
func StreamCLFCtx(ctx context.Context, r io.Reader, fn func(StreamRecord) bool) (stats StreamStats, err error) {
	_, sp := obsv.StartTraceSpan(ctx, "weblog.stream")
	defer func() {
		sp.SetAttrInt("lines", int64(stats.Lines))
		sp.SetAttrInt("records", int64(stats.Records))
		if err != nil {
			sp.Fail(err)
		}
		sp.End()
	}()
	src, err := maybeGzip(r)
	if err != nil {
		return StreamStats{}, err
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var st StreamStats
	in := newInterner()
	var tc timeCache
	var started bool
	var tally parseTally
	defer tally.flush()
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		st.Lines++
		tally.bytes += int64(len(line))
		var req Request
		client, ts, pathb, agentb, size, ok := parseCLFLineFast(line, &tc)
		if ok {
			tally.fast++
			req.Client = client
		} else {
			tally.strict++
			var path, agent string
			req, ts, path, size, agent, err = parseCLFLine(string(line))
			if err != nil {
				return st, fmt.Errorf("weblog: line %d: %w", st.Lines, err)
			}
			pathb, agentb = []byte(path), []byte(agent)
		}
		if req.Client.IsUnspecified() {
			continue
		}
		if !started {
			st.Start, started = ts, true
		}
		if ts.After(st.End) {
			st.End = ts
		}
		if ts.Before(st.Start) {
			// Clamp out-of-order records to the stream origin; a one-pass
			// consumer cannot rebase earlier records.
			ts = st.Start
		}
		req.Time = uint32(ts.Sub(st.Start) / time.Second)

		id, path := in.url(pathb)
		req.URL = id
		aid, agent, aerr := in.agent(agentb)
		if aerr != nil {
			return st, fmt.Errorf("weblog: line %d: %w", st.Lines, aerr)
		}
		req.Agent = aid

		st.Records++
		if !fn(StreamRecord{Request: req, Abs: ts, Path: path, Agent: agent, Size: size}) {
			break
		}
	}
	st.URLs = in.numURLs()
	st.Agents = in.numAgents()
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("weblog: streaming CLF: %w", err)
	}
	return st, nil
}

// interner maps URL and agent byte slices to dense ids and stable interned
// strings. Lookups on the hit path do not allocate (the compiler elides
// the string conversion inside a map index).
type interner struct {
	urlIndex   map[string]int32
	agentIndex map[string]uint16
	paths      []string
	agents     []string
}

func newInterner() *interner {
	return &interner{
		urlIndex:   make(map[string]int32),
		agentIndex: make(map[string]uint16),
	}
}

func (in *interner) url(b []byte) (int32, string) {
	if id, ok := in.urlIndex[string(b)]; ok {
		return id, in.paths[id]
	}
	p := string(b) // the one allocation per distinct URL
	id := int32(len(in.paths))
	in.urlIndex[p] = id
	in.paths = append(in.paths, p)
	return id, p
}

func (in *interner) agent(b []byte) (uint16, string, error) {
	if id, ok := in.agentIndex[string(b)]; ok {
		return id, in.agents[id], nil
	}
	if len(in.agents) >= 1<<16-1 {
		return 0, "", fmt.Errorf("more than %d distinct user agents", 1<<16-1)
	}
	a := string(b)
	id := uint16(len(in.agents))
	in.agentIndex[a] = id
	in.agents = append(in.agents, a)
	return id, a, nil
}

func (in *interner) numURLs() int   { return len(in.paths) }
func (in *interner) numAgents() int { return len(in.agents) }
