package weblog

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/stats"
)

// StreamGen synthesizes weblog records one at a time in O(clients +
// URLs) memory — the firehose counterpart of Generate, which
// materializes (and time-sorts) the whole request slice and therefore
// cannot feed a 100M-request replay. The trade against Generate:
// clients are drawn i.i.d. per record from a mixed-Pareto popularity
// (a one-pass generator cannot emit per-client runs and then sort), so
// per-client arrival patterns are memoryless, but the distributional
// shape the paper's figures depend on — Zipf-like requests-per-client
// and clients-per-network — is identical, and the draw sequence is
// fully determined by cfg.Seed.
type StreamGen struct {
	rng     *rand.Rand
	clients []netutil.Addr
	cdf     []float64 // client popularity CDF, aligned with clients
	urls    *urlSampler
	sizes   []int32
	next    time.Time
	step    time.Duration // mean inter-arrival
	emitted int
}

// GenRecord is one synthesized request: exactly what the firehose
// consumers need (the replay client posts Client, the accumulator
// weighs Size), without interned strings or a retained log.
type GenRecord struct {
	Client netutil.Addr
	URL    int32
	Size   int32
	Time   time.Time
}

// NewStreamGen builds a streaming generator over world with the same
// profile knobs as Generate. Spider/proxy planting is not supported in
// streaming mode (detection workloads use the materializing path);
// their fractions are ignored.
func NewStreamGen(world *inet.Internet, cfg GenConfig) (*StreamGen, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumNetworks > len(world.Networks) {
		return nil, fmt.Errorf("weblog: config wants %d networks, world has %d", cfg.NumNetworks, len(world.Networks))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	lg := &logGen{world: world, cfg: cfg, rng: rng}

	// Same population construction as the batch generator: Zipf-ish
	// clients-per-network, then a heavier-tailed per-client request
	// popularity that here becomes a sampling CDF instead of a quota.
	networks := lg.pickNetworks(cfg.NumNetworks)
	clientCounts, err := stats.Apportion(cfg.NumClients,
		lg.mixedWeights(len(networks), 1/cfg.ClientZipf), 1)
	if err != nil {
		return nil, err
	}
	var clients []netutil.Addr
	for i, n := range networks {
		clients = append(clients, lg.sampleHosts(n, clientCounts[i])...)
	}
	weights := lg.mixedWeights(len(clients), 1/cfg.RequestZipf)
	cdf := make([]float64, len(clients))
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	acc := 0.0
	for i, w := range weights {
		acc += w / sum
		cdf[i] = acc
	}
	cdf[len(cdf)-1] = 1

	scratch := &Log{}
	lg.makeResources(scratch)
	sizes := make([]int32, len(scratch.Resources))
	for i, r := range scratch.Resources {
		sizes[i] = r.Size
	}

	step := cfg.Duration / time.Duration(cfg.NumRequests)
	if step <= 0 {
		step = time.Millisecond
	}
	return &StreamGen{
		rng:     rng,
		clients: clients,
		cdf:     cdf,
		urls:    newURLSampler(rng, cfg.NumURLs, cfg.URLZipf),
		sizes:   sizes,
		next:    cfg.Start,
		step:    step,
	}, nil
}

// NumClients returns the synthesized client population size.
func (g *StreamGen) NumClients() int { return len(g.clients) }

// Emitted returns how many records Next has produced.
func (g *StreamGen) Emitted() int { return g.emitted }

// Next returns the next record. The stream never ends — the caller
// decides how many records a replay needs. Arrivals are a homogeneous
// Poisson process at the profile's mean rate.
func (g *StreamGen) Next() GenRecord {
	i := sort.SearchFloat64s(g.cdf, g.rng.Float64())
	if i >= len(g.clients) {
		i = len(g.clients) - 1
	}
	url := g.urls.draw()
	g.next = g.next.Add(time.Duration(g.rng.ExpFloat64() * float64(g.step)))
	g.emitted++
	return GenRecord{
		Client: g.clients[i],
		URL:    url,
		Size:   g.sizes[url],
		Time:   g.next,
	}
}
