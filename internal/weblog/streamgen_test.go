package weblog

import (
	"testing"
	"time"
)

// TestStreamGenDeterministic: the same seed yields the same record
// sequence — the property loadgen's deterministic replay mode and the
// firehose differential tests lean on.
func TestStreamGenDeterministic(t *testing.T) {
	world := testWorld(t)
	cfg := Nagano(0.01)
	a, err := NewStreamGen(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStreamGen(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("record %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	if a.Emitted() != 5000 {
		t.Fatalf("emitted %d, want 5000", a.Emitted())
	}
}

// TestStreamGenShape: records are well-formed (positive sizes,
// monotone timestamps, clients from the synthesized population) and
// the popularity is skewed — a heavy-tailed stream, not uniform.
func TestStreamGenShape(t *testing.T) {
	world := testWorld(t)
	cfg := Apache(0.01)
	g, err := NewStreamGen(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumClients() == 0 {
		t.Fatal("no clients synthesized")
	}
	counts := make(map[uint32]int)
	last := time.Time{}
	const n = 20000
	for i := 0; i < n; i++ {
		r := g.Next()
		if r.Size <= 0 {
			t.Fatalf("record %d has size %d", i, r.Size)
		}
		if r.Time.Before(last) {
			t.Fatalf("record %d goes back in time: %v < %v", i, r.Time, last)
		}
		last = r.Time
		if r.Client.IsUnspecified() {
			t.Fatalf("record %d from the unspecified address", i)
		}
		counts[uint32(r.Client)]++
	}
	// Heavy tail: the busiest 10% of observed clients should carry well
	// over their uniform share of requests.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if uniform := n / len(counts); max < 4*uniform {
		t.Fatalf("popularity looks uniform: max client %d requests vs uniform share %d", max, uniform)
	}
}

// TestStreamGenValidates: invalid profiles are rejected up front.
func TestStreamGenValidates(t *testing.T) {
	world := testWorld(t)
	bad := Nagano(0.01)
	bad.NumRequests = 0
	if _, err := NewStreamGen(world, bad); err == nil {
		t.Fatal("zero-request profile accepted")
	}
	huge := Nagano(0.01)
	huge.NumNetworks = len(world.Networks) + 1
	huge.NumClients = huge.NumNetworks * 2
	if _, err := NewStreamGen(world, huge); err == nil {
		t.Fatal("profile wanting more networks than the world has accepted")
	}
}
