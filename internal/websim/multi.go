package websim

import (
	"fmt"
	"sort"

	"github.com/netaware/netcluster/internal/cache"
	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/weblog"
)

// Multi-server simulation, the paper's closing remark in Section 4.1.5:
// "While we only address simulation of Web caching system with one server
// and multiple proxies, we can also simulate multiple servers and multiple
// proxies by merging more server logs collected at the same time."
//
// Each input is one origin server's clustered log. The same per-cluster
// proxy serves its clients' requests to every origin: resources are
// namespaced per server, so /index.html on server A and server B are
// distinct cache entries, but one client population shares one proxy.

// ServerOutcome reports one origin's view of the shared proxy fleet.
type ServerOutcome struct {
	Name         string
	Requests     int
	HitRatio     float64
	ByteHitRatio float64
}

// MultiOutcome aggregates a multi-server run.
type MultiOutcome struct {
	Servers []ServerOutcome
	// Overall ratios across all origins.
	HitRatio     float64
	ByteHitRatio float64
	Requests     int
	// Proxies in decreasing order of request volume, aggregated across
	// servers.
	Proxies []ProxyOutcome
}

// SimulateMulti replays several clustered logs through one shared fleet of
// per-cluster proxies. All logs are assumed to start at the same instant
// ("collected at the same time"); each log's own clustering result decides
// its clients' clusters — with a common table and method the assignments
// agree across logs. An error is returned when two results disagree about
// a shared client's cluster, which would mean they were clustered with
// different tables.
func SimulateMulti(results []*cluster.Result, cfg Config) (MultiOutcome, error) {
	if len(results) == 0 {
		return MultiOutcome{}, fmt.Errorf("websim: no inputs")
	}

	// Build the combined resource table: per-server offsets namespace URLs.
	var combined []weblog.Resource
	offsets := make([]int32, len(results))
	for i, res := range results {
		offsets[i] = int32(len(combined))
		combined = append(combined, res.Log.Resources...)
	}

	// Merge request streams in time order (k-way, but a simple global sort
	// keeps the code obvious; logs are already sorted so this is nearly
	// linear in practice for Go's sort on mostly-ordered input).
	type tagged struct {
		weblog.Request
		server int
	}
	var all []tagged
	for i, res := range results {
		for j := range res.Log.Requests {
			r := res.Log.Requests[j]
			r.URL += offsets[i]
			all = append(all, tagged{Request: r, server: i})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })

	// Consistent cluster assignment across results.
	assign := func(server int, a netutil.Addr) (netutil.Prefix, bool) {
		if cl, ok := results[server].ClusterOf(a); ok {
			return cl.Prefix, true
		}
		return netutil.Prefix{}, false
	}
	for _, res := range results[1:] {
		for a, cl := range sampleAssignments(res, 64) {
			if p0, ok := results[0].ClusterOf(a); ok && p0.Prefix != cl {
				return MultiOutcome{}, fmt.Errorf(
					"websim: results disagree on client %v (%v vs %v): cluster all logs with one table",
					a, p0.Prefix, cl)
			}
		}
	}

	proxies := map[netutil.Prefix]*cache.Proxy{}
	type perServer struct {
		requests int
		hits     int
		bytes    int64
		byteHits int64
	}
	srv := make([]perServer, len(results))

	for _, r := range all {
		p, ok := assign(r.server, r.Client)
		if !ok {
			srv[r.server].requests++
			srv[r.server].bytes += int64(combined[r.URL].Size)
			continue
		}
		px := proxies[p]
		if px == nil {
			px = cache.NewProxy(cfg.CacheBytes, cfg.TTL, cfg.PCV)
			proxies[p] = px
		}
		before := px.Stats
		px.Tick(r.Time)
		px.Request(combined, r.URL, r.Time)
		s := &srv[r.server]
		s.requests++
		s.hits += px.Stats.Hits - before.Hits
		s.bytes += px.Stats.Bytes - before.Bytes
		s.byteHits += px.Stats.ByteHits - before.ByteHits
	}

	var out MultiOutcome
	var totReq, totHits int
	var totBytes, totByteHits int64
	for i, res := range results {
		s := srv[i]
		so := ServerOutcome{Name: res.Log.Name, Requests: s.requests}
		if s.requests > 0 {
			so.HitRatio = float64(s.hits) / float64(s.requests)
		}
		if s.bytes > 0 {
			so.ByteHitRatio = float64(s.byteHits) / float64(s.bytes)
		}
		out.Servers = append(out.Servers, so)
		totReq += s.requests
		totHits += s.hits
		totBytes += s.bytes
		totByteHits += s.byteHits
	}
	out.Requests = totReq
	if totReq > 0 {
		out.HitRatio = float64(totHits) / float64(totReq)
	}
	if totBytes > 0 {
		out.ByteHitRatio = float64(totByteHits) / float64(totBytes)
	}
	for p, px := range proxies {
		out.Proxies = append(out.Proxies, ProxyOutcome{
			Prefix:   p,
			Requests: px.Stats.Requests,
			Bytes:    px.Stats.Bytes,
			Stats:    px.Stats,
		})
	}
	sort.Slice(out.Proxies, func(i, j int) bool {
		if out.Proxies[i].Requests != out.Proxies[j].Requests {
			return out.Proxies[i].Requests > out.Proxies[j].Requests
		}
		return netutil.ComparePrefix(out.Proxies[i].Prefix, out.Proxies[j].Prefix) < 0
	})
	return out, nil
}

// sampleAssignments returns up to n (client, prefix) pairs from a result,
// deterministically, for cross-result consistency checking.
func sampleAssignments(res *cluster.Result, n int) map[netutil.Addr]netutil.Prefix {
	out := make(map[netutil.Addr]netutil.Prefix, n)
	for _, cl := range res.Clusters {
		for a := range cl.Clients {
			out[a] = cl.Prefix
			break
		}
		if len(out) >= n {
			break
		}
	}
	return out
}
