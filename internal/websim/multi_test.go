package websim

import (
	"testing"

	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/weblog"
)

func TestSimulateMultiMatchesSingleOnOneLog(t *testing.T) {
	f := setup(t)
	cfg := DefaultConfig()
	cfg.MinURLAccesses = 0 // multi path has no URL floor; align
	single := Simulate(f.naResult, cfg)
	multi, err := SimulateMulti([]*cluster.Result{f.naResult}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Requests != single.Requests+single.Bypassed {
		t.Fatalf("requests: multi %d vs single %d+%d", multi.Requests, single.Requests, single.Bypassed)
	}
	// Hit counts agree (multi counts bypassed requests as misses in the
	// same way: they never reach a proxy).
	if diff := multi.HitRatio - float64(single.HitRatio)*float64(single.Requests-single.Bypassed)/float64(single.Requests); diff > 0.05 || diff < -0.05 {
		t.Fatalf("hit ratios diverge: multi %.3f vs single %.3f", multi.HitRatio, single.HitRatio)
	}
}

func TestSimulateMultiTwoServers(t *testing.T) {
	f := setup(t)
	// A second origin with a different workload over the same world and
	// table: same clustering method, so assignments agree.
	world := fixtureWorld(t)
	log2, err := weblog.Generate(world, weblog.EW3(0.01))
	if err != nil {
		t.Fatal(err)
	}
	res2 := cluster.ClusterLog(log2, cluster.NetworkAware{Table: fixtureTable(t)})
	cfg := DefaultConfig()
	cfg.MinURLAccesses = 0
	out, err := SimulateMulti([]*cluster.Result{f.naResult, res2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Servers) != 2 {
		t.Fatalf("servers = %d", len(out.Servers))
	}
	if out.Servers[0].Requests == 0 || out.Servers[1].Requests == 0 {
		t.Fatal("both servers must see traffic")
	}
	if out.Requests != out.Servers[0].Requests+out.Servers[1].Requests {
		t.Fatal("request totals inconsistent")
	}
	if out.HitRatio <= 0 || out.HitRatio >= 1 {
		t.Fatalf("overall hit ratio = %.3f", out.HitRatio)
	}
	// Proxy fleet is shared: total proxy requests equal clustered requests.
	proxyReqs := 0
	for _, p := range out.Proxies {
		proxyReqs += p.Requests
	}
	if proxyReqs > out.Requests {
		t.Fatalf("proxy requests %d exceed total %d", proxyReqs, out.Requests)
	}
}

func TestSimulateMultiEmpty(t *testing.T) {
	if _, err := SimulateMulti(nil, DefaultConfig()); err == nil {
		t.Fatal("empty input must fail")
	}
}
