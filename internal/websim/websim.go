// Package websim runs the paper's trace-driven Web caching simulation
// (Section 4.1.5): one proxy cache is placed in front of every client
// cluster, the log is replayed in time order, and hit/byte-hit ratios are
// measured both server-wide (Figure 11) and per proxy (Figure 12).
package websim

import (
	"sort"

	"github.com/netaware/netcluster/internal/cache"
	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/netutil"
)

// Config parameterizes one simulation run.
type Config struct {
	// CacheBytes is each proxy's capacity; 0 means unbounded (the paper's
	// per-proxy experiment fixes cache size as infinite).
	CacheBytes int64
	// TTL is the freshness lifetime in seconds; the paper defaults to 1 h.
	TTL uint32
	// PCV toggles piggyback cache validation (on in the paper).
	PCV bool
	// MinURLAccesses drops resources requested fewer times than this
	// across the whole log (the paper's footnote 9 ignores resources
	// accessed by clients less than 10 times).
	MinURLAccesses int
}

// DefaultConfig mirrors the paper's setup: 1 h TTL, PCV, 10-access URL
// floor; callers sweep CacheBytes.
func DefaultConfig() Config {
	return Config{TTL: 3600, PCV: true, MinURLAccesses: 10}
}

// ProxyOutcome reports one cluster's proxy performance.
type ProxyOutcome struct {
	Prefix   netutil.Prefix
	Clients  int
	Requests int
	Bytes    int64
	Stats    cache.Stats
}

// Outcome aggregates one run.
type Outcome struct {
	// Server-wide ratios: fraction of (byte-)traffic absorbed by proxies,
	// i.e. not served by the origin.
	HitRatio     float64
	ByteHitRatio float64
	// Requests replayed (after the URL floor) and those bypassing proxies
	// because their client was unclustered.
	Requests int
	Bypassed int
	// Proxies in decreasing order of request volume.
	Proxies []ProxyOutcome
}

// MeanLatency estimates the mean client-perceived latency of the run
// under a two-level delay model (see cache.Stats.MeanLatency). Bypassed
// requests pay the full origin round trip.
func (o Outcome) MeanLatency(proxyRTT, originRTT float64) float64 {
	if o.Requests == 0 {
		return 0
	}
	total := float64(o.Bypassed) * originRTT
	for _, p := range o.Proxies {
		total += p.Stats.MeanLatency(proxyRTT, originRTT) * float64(p.Stats.Requests)
	}
	return total / float64(o.Requests)
}

// Simulate replays res.Log through per-cluster proxies. Requests from
// unclustered clients go straight to the origin (no proxy fronts them) and
// count as misses in the server-wide ratios.
func Simulate(res *cluster.Result, cfg Config) Outcome {
	l := res.Log

	// Apply the minimum-access URL floor.
	var keep []bool
	if cfg.MinURLAccesses > 1 {
		counts := make([]int, len(l.Resources))
		for i := range l.Requests {
			counts[l.Requests[i].URL]++
		}
		keep = make([]bool, len(l.Resources))
		for u, c := range counts {
			keep[u] = c >= cfg.MinURLAccesses
		}
	}

	proxies := make(map[netutil.Prefix]*cache.Proxy, len(res.Clusters))
	proxyFor := func(p netutil.Prefix) *cache.Proxy {
		px := proxies[p]
		if px == nil {
			px = cache.NewProxy(cfg.CacheBytes, cfg.TTL, cfg.PCV)
			proxies[p] = px
		}
		return px
	}

	var out Outcome
	var totalHits, totalReqs int
	var totalByteHits, totalBytes int64
	for i := range l.Requests {
		r := &l.Requests[i]
		if keep != nil && !keep[r.URL] {
			continue
		}
		size := int64(l.Resources[r.URL].Size)
		totalReqs++
		totalBytes += size
		cl, ok := res.ClusterOf(r.Client)
		if !ok {
			out.Bypassed++
			continue
		}
		px := proxyFor(cl.Prefix)
		px.Tick(r.Time)
		px.Request(l.Resources, r.URL, r.Time)
	}
	out.Requests = totalReqs

	for p, px := range proxies {
		px.PublishMetrics()
		cl, _ := res.Find(p)
		clients := 0
		if cl != nil {
			clients = cl.NumClients()
		}
		out.Proxies = append(out.Proxies, ProxyOutcome{
			Prefix:   p,
			Clients:  clients,
			Requests: px.Stats.Requests,
			Bytes:    px.Stats.Bytes,
			Stats:    px.Stats,
		})
		totalHits += px.Stats.Hits
		totalByteHits += px.Stats.ByteHits
	}
	sort.Slice(out.Proxies, func(i, j int) bool {
		if out.Proxies[i].Requests != out.Proxies[j].Requests {
			return out.Proxies[i].Requests > out.Proxies[j].Requests
		}
		return netutil.ComparePrefix(out.Proxies[i].Prefix, out.Proxies[j].Prefix) < 0
	})
	if totalReqs > 0 {
		out.HitRatio = float64(totalHits) / float64(totalReqs)
	}
	if totalBytes > 0 {
		out.ByteHitRatio = float64(totalByteHits) / float64(totalBytes)
	}
	return out
}

// Sweep runs Simulate across cache sizes, returning outcomes aligned with
// sizes — the Figure 11 x-axis (the paper sweeps 100 KB to 100 MB).
func Sweep(res *cluster.Result, cfg Config, sizes []int64) []Outcome {
	out := make([]Outcome, len(sizes))
	for i, s := range sizes {
		c := cfg
		c.CacheBytes = s
		out[i] = Simulate(res, c)
	}
	return out
}
