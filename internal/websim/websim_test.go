package websim

import (
	"testing"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/detect"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/weblog"
)

type fixture struct {
	world    *inet.Internet
	merged   *bgp.Merged
	naResult *cluster.Result
	siResult *cluster.Result
}

var cached *fixture

func setup(t *testing.T) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	wcfg := inet.DefaultConfig()
	wcfg.NumASes = 300
	wcfg.NumTierOne = 8
	world, err := inet.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := bgpsim.New(world, bgpsim.DefaultConfig())
	merged := bgpsim.Merge(sim.Collect())
	log, err := weblog.Generate(world, weblog.Nagano(0.02))
	if err != nil {
		t.Fatal(err)
	}
	// Eliminate detected spiders/proxies first, as the paper does.
	pre := cluster.ClusterLog(log, cluster.Simple{})
	bad := detect.FindingClients(detect.Detect(pre, detect.DefaultConfig()))
	clean := detect.Eliminate(log, bad)
	cached = &fixture{
		world:    world,
		merged:   merged,
		naResult: cluster.ClusterLog(clean, cluster.NetworkAware{Table: merged}),
		siResult: cluster.ClusterLog(clean, cluster.Simple{}),
	}
	return cached
}

func fixtureWorld(t *testing.T) *inet.Internet { return setup(t).world }
func fixtureTable(t *testing.T) *bgp.Merged    { return setup(t).merged }

func TestHitRatioGrowsWithCacheSize(t *testing.T) {
	f := setup(t)
	sizes := []int64{100 << 10, 1 << 20, 10 << 20, 100 << 20}
	outs := Sweep(f.naResult, DefaultConfig(), sizes)
	for i := 1; i < len(outs); i++ {
		if outs[i].HitRatio+0.01 < outs[i-1].HitRatio {
			t.Errorf("hit ratio fell with bigger cache: %.3f -> %.3f",
				outs[i-1].HitRatio, outs[i].HitRatio)
		}
	}
	last := outs[len(outs)-1]
	if last.HitRatio < 0.35 {
		t.Errorf("large-cache hit ratio = %.3f, expected substantial locality", last.HitRatio)
	}
	if last.HitRatio > 0.98 {
		t.Errorf("hit ratio = %.3f suspiciously perfect", last.HitRatio)
	}
}

func TestSimpleApproachUnderestimates(t *testing.T) {
	// Figure 11's headline: at large cache sizes the simple approach
	// under-estimates the server-observed hit and byte-hit ratios because
	// its fragmented clusters prevent proxy sharing.
	f := setup(t)
	cfg := DefaultConfig()
	cfg.CacheBytes = 100 << 20
	na := Simulate(f.naResult, cfg)
	si := Simulate(f.siResult, cfg)
	if si.HitRatio >= na.HitRatio {
		t.Errorf("simple (%.3f) should under-estimate network-aware (%.3f) hit ratio",
			si.HitRatio, na.HitRatio)
	}
	if si.ByteHitRatio >= na.ByteHitRatio {
		t.Errorf("simple (%.3f) should under-estimate network-aware (%.3f) byte hit ratio",
			si.ByteHitRatio, na.ByteHitRatio)
	}
}

func TestInfiniteCachePerProxy(t *testing.T) {
	f := setup(t)
	cfg := DefaultConfig()
	cfg.CacheBytes = 0 // unbounded
	out := Simulate(f.naResult, cfg)
	if len(out.Proxies) == 0 {
		t.Fatal("no proxies")
	}
	// Ordered by requests, descending.
	for i := 1; i < len(out.Proxies); i++ {
		if out.Proxies[i].Requests > out.Proxies[i-1].Requests {
			t.Fatal("proxies not sorted by requests")
		}
	}
	// No proxy can evict with unbounded capacity.
	for _, p := range out.Proxies {
		if p.Stats.Evictions != 0 {
			t.Fatalf("unbounded proxy evicted: %+v", p.Stats)
		}
	}
}

func TestURLFloorReducesRequests(t *testing.T) {
	// Use a thin slice of the log so plenty of URLs fall under the
	// 10-access floor (over the whole trace every URL clears it).
	f := setup(t)
	slice := f.naResult.Log.Slice(0, 1800)
	res := cluster.ClusterLog(slice, cluster.Simple{})
	with := Simulate(res, Config{TTL: 3600, PCV: true, MinURLAccesses: 10})
	without := Simulate(res, Config{TTL: 3600, PCV: true, MinURLAccesses: 0})
	if with.Requests >= without.Requests {
		t.Errorf("URL floor did not drop anything: %d vs %d", with.Requests, without.Requests)
	}
	if without.Requests != res.TotalRequests {
		t.Errorf("no-floor run must replay all %d requests, got %d",
			res.TotalRequests, without.Requests)
	}
}

func TestPCVBeatsPlainTTLOnServerContacts(t *testing.T) {
	f := setup(t)
	base := DefaultConfig()
	base.CacheBytes = 10 << 20
	pcv := Simulate(f.naResult, base)
	plain := base
	plain.PCV = false
	noPcv := Simulate(f.naResult, plain)
	sync := func(o Outcome) int {
		total := 0
		for _, p := range o.Proxies {
			total += p.Stats.SyncValidations
		}
		return total
	}
	if sync(pcv) >= sync(noPcv) {
		t.Errorf("PCV sync validations (%d) should undercut plain TTL (%d)",
			sync(pcv), sync(noPcv))
	}
	if pcv.HitRatio < noPcv.HitRatio-0.01 {
		t.Errorf("PCV hit ratio %.3f should not trail plain TTL %.3f",
			pcv.HitRatio, noPcv.HitRatio)
	}
}

func TestBypassedUnclusteredClients(t *testing.T) {
	f := setup(t)
	out := Simulate(f.naResult, DefaultConfig())
	if len(f.naResult.Unclustered) > 0 && out.Bypassed == 0 {
		t.Error("unclustered clients must bypass proxies")
	}
	if out.Bypassed > out.Requests/10 {
		t.Errorf("bypassed %d of %d — too many unclustered", out.Bypassed, out.Requests)
	}
}

func TestMeanLatencyImprovesWithCacheSize(t *testing.T) {
	f := setup(t)
	outs := Sweep(f.naResult, DefaultConfig(), []int64{100 << 10, 50 << 20})
	small := outs[0].MeanLatency(10, 120)
	big := outs[1].MeanLatency(10, 120)
	if big >= small {
		t.Errorf("bigger caches must lower latency: %g -> %g", small, big)
	}
	noCache := 130.0 // every request pays proxy+origin
	if big >= noCache {
		t.Errorf("cached latency %g must beat no-cache %g", big, noCache)
	}
	var empty Outcome
	if empty.MeanLatency(10, 120) != 0 {
		t.Error("empty outcome latency must be 0")
	}
}

func TestEmptySimulation(t *testing.T) {
	l := &weblog.Log{Name: "empty"}
	res := cluster.ClusterLog(l, cluster.Simple{})
	out := Simulate(res, DefaultConfig())
	if out.Requests != 0 || out.HitRatio != 0 || len(out.Proxies) != 0 {
		t.Fatalf("empty outcome = %+v", out)
	}
}
