package whois

// Error-classification behavior of the whois client: which outcomes are
// answers (cached, never retried) and which are transport failures
// (retried up to the budget). The taxonomy mirrors dnswire's: a "% no
// match" notice is the registry's NXDOMAIN — definitive — while a
// connection that dies before yielding a single line tells us nothing
// and must be retried.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// startRawServer runs a TCP server that answers every query with the
// same canned payload, optionally closing before writing anything.
func startRawServer(t *testing.T, payload string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				conn.SetDeadline(time.Now().Add(2 * time.Second))
				// Consume the query line before answering, like a real
				// RIPE-style server.
				bufio.NewReader(conn).ReadString('\n')
				if payload != "" {
					io.WriteString(conn, payload)
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestResponseClassification pins the fetch-level taxonomy: comment-only
// and keyless payloads are definitive not-found answers (nil error, no
// retry), record lines parse with comments interleaved, and an empty
// stream is an error.
func TestResponseClassification(t *testing.T) {
	cases := []struct {
		name      string
		payload   string
		wantFound bool
		wantName  string
		wantErr   string // substring of the error, "" for success
	}{
		{"record", "as-name: EBONE\r\ncountry: DE\r\n", true, "EBONE", ""},
		{"record with comments", "% RIPE database\r\nas-name: EBONE\r\n% EOF\r\n", true, "EBONE", ""},
		{"comment-only not-found", "% no entries found for AS9999\r\n", false, "", ""},
		{"keyless garbage", "no colon anywhere\r\n", false, "", ""},
		{"empty stream", "", false, "", "empty response"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := startRawServer(t, tc.payload)
			c := NewClient(addr)
			c.Timeout = time.Second
			c.Retries = 0 // expose single-attempt behavior
			c.Breaker = nil

			rec, found, err := c.Lookup(9999)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Lookup: %v", err)
			}
			if found != tc.wantFound || rec.Name != tc.wantName {
				t.Fatalf("found=%v rec=%+v, want found=%v name=%q", found, rec, tc.wantFound, tc.wantName)
			}
			// Definitive answers never retry.
			if c.RetryCount() != 0 {
				t.Fatalf("retries = %d, want 0 for a definitive answer", c.RetryCount())
			}
		})
	}
}

// TestNotFoundNoticeNotRetried: the "% no match" notice is an answer, so
// it is cached and consumes exactly one network query even with a
// generous retry budget — the registry is not hammered for ASes it
// simply does not know.
func TestNotFoundNoticeNotRetried(t *testing.T) {
	addr := startRawServer(t, "% no entries found\r\n")
	c := NewClient(addr)
	c.Timeout = time.Second
	c.Retries = 5
	c.Breaker = nil

	for i := 0; i < 3; i++ {
		if _, found, err := c.Lookup(65001); err != nil || found {
			t.Fatalf("lookup %d: found=%v err=%v", i, found, err)
		}
	}
	if q, r := c.NetworkQueries(), c.RetryCount(); q != 1 || r != 0 {
		t.Fatalf("queries=%d retries=%d, want 1/0 (notice cached, never retried)", q, r)
	}
}

// TestEmptyResponseRetried: a connection that closes before delivering a
// single line is transient — the client must retry it and succeed once
// the registry recovers.
func TestEmptyResponseRetried(t *testing.T) {
	_, good := startServer(t)

	var dials atomic.Int32
	c := NewClient(good)
	c.Timeout = time.Second
	c.Retries = 4
	c.Breaker = nil
	c.Backoff.BaseDelay = time.Millisecond
	c.Backoff.Jitter = 0
	c.Dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
		if dials.Add(1) <= 2 {
			// First two attempts reach a server that accepts the query
			// and hangs up without a word: errEmptyResponse territory.
			cli, srv := net.Pipe()
			go func() {
				buf := make([]byte, 64)
				srv.Read(buf)
				srv.Close()
			}()
			return cli, nil
		}
		var d net.Dialer
		return d.DialContext(ctx, network, addr)
	}

	rec, found, err := c.Lookup(7018)
	if err != nil || !found {
		t.Fatalf("Lookup through empty responses: rec=%+v found=%v err=%v", rec, found, err)
	}
	if rec.Name != "Ficus Networks" {
		t.Fatalf("rec = %+v", rec)
	}
	if got := c.RetryCount(); got != 2 {
		t.Fatalf("retries = %d, want exactly 2 (one per empty response)", got)
	}
}

// TestEmptyResponseExhaustsBudget: when every attempt comes back empty
// the error surfaces with the attempt count, proving the full retry
// budget was spent on the transient classification.
func TestEmptyResponseExhaustsBudget(t *testing.T) {
	addr := startRawServer(t, "")
	c := NewClient(addr)
	c.Timeout = time.Second
	c.Retries = 3
	c.Breaker = nil
	c.Backoff.BaseDelay = time.Millisecond
	c.Backoff.Jitter = 0

	_, found, err := c.Lookup(64)
	if err == nil || found {
		t.Fatalf("expected failure, got found=%v err=%v", found, err)
	}
	if !strings.Contains(err.Error(), "empty response") {
		t.Fatalf("err = %v, want empty-response cause", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("%d attempt", c.Retries+1)) {
		t.Fatalf("err = %v, want %d attempts reported", err, c.Retries+1)
	}
	if got := c.RetryCount(); got != c.Retries {
		t.Fatalf("retries = %d, want %d", got, c.Retries)
	}
}
