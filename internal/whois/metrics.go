package whois

import "github.com/netaware/netcluster/internal/obsv"

// Process-wide whois client totals; cache hits vs queries show how much
// the AS-record cache shields the registry.
var (
	whoisQueries   = obsv.C("whois.queries")
	whoisCacheHits = obsv.C("whois.cache_hits")
	whoisFastFails = obsv.C("whois.fast_fails")
)
