package whois

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/faultnet"
	"github.com/netaware/netcluster/internal/retry"
)

func startTestServer(t *testing.T, mutate func(*Server)) (*Server, string) {
	t.Helper()
	s := NewServer(map[uint32]Record{
		7018: {ASN: 7018, Name: "ATT-INTERNET4", Country: "us"},
	})
	if mutate != nil {
		mutate(s)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

// TestServerRejectsOversizedRequest: a request longer than MaxRequest
// with no newline must be cut off with an error, not buffered forever.
func TestServerRejectsOversizedRequest(t *testing.T) {
	s, addr := startTestServer(t, func(s *Server) { s.MaxRequest = 64 })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(strings.Repeat("A", 500))); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("expected an error response, got read error %v", err)
	}
	if !strings.Contains(line, "exceeds") {
		t.Fatalf("response = %q", line)
	}
	if s.RejectedCount() != 1 {
		t.Fatalf("rejected = %d", s.RejectedCount())
	}
	if s.QueryCount() != 0 {
		t.Fatalf("oversized request must not count as a query")
	}
}

// TestServerReadDeadlineUnpinsStalledClient: a client that connects and
// never sends anything must be dropped after ReadTimeout, not pin the
// handler goroutine forever.
func TestServerReadDeadlineUnpinsStalledClient(t *testing.T) {
	s, addr := startTestServer(t, func(s *Server) { s.ReadTimeout = 50 * time.Millisecond })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing. The server must close the connection on its own.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	start := time.Now()
	_, err = conn.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("server should have closed the stalled connection")
	}
	if since := time.Since(start); since > time.Second {
		t.Fatalf("stall cut-off took %v", since)
	}
	if s.RejectedCount() != 1 {
		t.Fatalf("rejected = %d", s.RejectedCount())
	}
}

// TestServerHalfLineStall: a client that sends a partial line and stalls
// is also cut off by the read deadline.
func TestServerHalfLineStall(t *testing.T) {
	s, addr := startTestServer(t, func(s *Server) { s.ReadTimeout = 50 * time.Millisecond })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("AS70")) // no newline, then silence
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server should have dropped the half-line stall")
	}
	if s.RejectedCount() != 1 {
		t.Fatalf("rejected = %d", s.RejectedCount())
	}
}

// TestClientRetriesThroughFaults: 20% inbound-drop on the listener (the
// handshake "fails" and the conn closes) still yields a correct record
// thanks to retry.
func TestClientRetriesThroughFaults(t *testing.T) {
	inj := faultnet.New(faultnet.Profile{Seed: 23, Inbound: faultnet.Faults{Drop: 0.4}})
	_, addr := startTestServer(t, func(s *Server) { s.Wrap = inj.Listener })

	c := NewClient(addr)
	c.Timeout = 300 * time.Millisecond
	c.Retries = 8
	c.Backoff.BaseDelay = 2 * time.Millisecond
	c.Backoff.Jitter = 0

	rec, ok, err := c.Lookup(7018)
	if err != nil || !ok || rec.Name != "ATT-INTERNET4" {
		t.Fatalf("rec=%+v ok=%v err=%v", rec, ok, err)
	}
	// The drop rate makes at least one retry overwhelmingly likely, but
	// the lookup itself is the assertion; just log the counters.
	t.Logf("network queries=%d retries=%d faults=%+v", c.NetworkQueries(), c.RetryCount(), inj.Stats())
}

// TestClientBreakerFailsFast: a dead registry opens the breaker; further
// lookups are rejected instantly with retry.ErrOpen.
func TestClientBreakerFailsFast(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := NewClient(addr)
	c.Timeout = 100 * time.Millisecond
	c.Retries = 0
	c.Backoff.BaseDelay = 0
	c.Breaker = retry.NewBreaker(2, time.Hour)

	for i := uint32(0); i < 2; i++ {
		if _, _, err := c.Lookup(100 + i); err == nil {
			t.Fatal("lookup against dead registry must fail")
		}
	}
	start := time.Now()
	_, _, err = c.Lookup(999)
	if !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("want retry.ErrOpen, got %v", err)
	}
	if since := time.Since(start); since > 20*time.Millisecond {
		t.Fatalf("fast-fail took %v", since)
	}
}

func TestLookupContextCancellation(t *testing.T) {
	// A listener that accepts and never responds.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold open, never write
		}
	}()
	c := NewClient(ln.Addr().String())
	c.Timeout = 10 * time.Second
	c.Retries = 3
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, _, err := c.LookupContext(ctx, 7018); err == nil {
		t.Fatal("cancelled lookup must fail")
	}
	if since := time.Since(start); since > time.Second {
		t.Fatalf("cancellation took %v", since)
	}
}

// TestNormalQueryStillWorks guards the hardened read path against
// regressions: the plain protocol exchange is unchanged.
func TestNormalQueryStillWorks(t *testing.T) {
	s, addr := startTestServer(t, nil)
	c := NewClient(addr)
	rec, ok, err := c.Lookup(7018)
	if err != nil || !ok || rec.Country != "us" {
		t.Fatalf("rec=%+v ok=%v err=%v", rec, ok, err)
	}
	if s.QueryCount() != 1 || s.RejectedCount() != 0 {
		t.Fatalf("queries=%d rejected=%d", s.QueryCount(), s.RejectedCount())
	}
}
