// Package whois implements the RFC 3912 query/response protocol for the
// AS registry: the observable source of the "AS numbers and geographical
// locations" the paper's proxy-placement strategy 2 groups by, and of the
// AS information its future-work section wants for error reduction. One
// query ("AS7018\r\n") yields a text record; the registry content derives
// from the ground-truth world via bgpsim.ASRegistry.
package whois

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Record is one AS registry entry.
type Record struct {
	ASN     uint32
	Name    string
	Country string
}

// Server answers whois queries over TCP.
type Server struct {
	records map[uint32]Record

	mu       sync.Mutex
	listener net.Listener
	done     chan struct{}
	queries  int
}

// NewServer builds a server over a registry snapshot.
func NewServer(records map[uint32]Record) *Server {
	cp := make(map[uint32]Record, len(records))
	for k, v := range records {
		cp[k] = v
	}
	return &Server{records: cp, done: make(chan struct{})}
}

// QueryCount returns how many queries the server has answered.
func (s *Server) QueryCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// Start listens on addr ("127.0.0.1:0" for tests) and serves until Close.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("whois: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	go s.serve(ln)
	return ln.Addr(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return nil
	default:
		close(s.done)
	}
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

func (s *Server) serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		go s.handle(conn)
	}
}

// handle answers one connection: whois is one query, one response, close.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return
	}
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()

	w := bufio.NewWriter(conn)
	defer w.Flush()
	query := strings.TrimSpace(line)
	asn, ok := parseASQuery(query)
	if !ok {
		fmt.Fprintf(w, "%% error: unsupported query %q (use ASnnnn)\r\n", query)
		return
	}
	rec, found := s.records[asn]
	if !found {
		fmt.Fprintf(w, "%% no entries found for AS%d\r\n", asn)
		return
	}
	fmt.Fprintf(w, "aut-num:    AS%d\r\n", rec.ASN)
	fmt.Fprintf(w, "as-name:    %s\r\n", rec.Name)
	fmt.Fprintf(w, "country:    %s\r\n", strings.ToUpper(rec.Country))
	fmt.Fprintf(w, "source:     SYNTHETIC-REGISTRY\r\n")
}

func parseASQuery(q string) (uint32, bool) {
	q = strings.ToUpper(strings.TrimSpace(q))
	q = strings.TrimPrefix(q, "AS")
	v, err := strconv.ParseUint(q, 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(v), true
}

// Client queries a whois server, caching responses (registry data is
// static over an experiment's lifetime, and strategy-2 grouping asks for
// the same origin ASes repeatedly).
type Client struct {
	Server  string
	Timeout time.Duration

	mu    sync.Mutex
	cache map[uint32]*Record // nil entry = known-missing
	count int
}

// NewClient returns a client for the server address.
func NewClient(server string) *Client {
	return &Client{Server: server, Timeout: 5 * time.Second, cache: map[uint32]*Record{}}
}

// NetworkQueries returns how many queries actually went over the wire.
func (c *Client) NetworkQueries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Lookup fetches the record for asn. ok is false when the registry has no
// entry; transport failures return an error.
func (c *Client) Lookup(asn uint32) (Record, bool, error) {
	c.mu.Lock()
	if rec, hit := c.cache[asn]; hit {
		c.mu.Unlock()
		if rec == nil {
			return Record{}, false, nil
		}
		return *rec, true, nil
	}
	c.mu.Unlock()

	rec, found, err := c.fetch(asn)
	if err != nil {
		return Record{}, false, err
	}
	c.mu.Lock()
	if found {
		cp := rec
		c.cache[asn] = &cp
	} else {
		c.cache[asn] = nil
	}
	c.mu.Unlock()
	return rec, found, nil
}

func (c *Client) fetch(asn uint32) (Record, bool, error) {
	c.mu.Lock()
	c.count++
	c.mu.Unlock()
	conn, err := net.DialTimeout("tcp", c.Server, c.Timeout)
	if err != nil {
		return Record{}, false, fmt.Errorf("whois: dial: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.Timeout))
	if _, err := fmt.Fprintf(conn, "AS%d\r\n", asn); err != nil {
		return Record{}, false, err
	}
	rec := Record{ASN: asn}
	found := false
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue // comment / not-found notice
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "as-name":
			rec.Name = val
			found = true
		case "country":
			rec.Country = strings.ToLower(val)
			found = true
		}
	}
	if err := sc.Err(); err != nil {
		return Record{}, false, err
	}
	return rec, found, nil
}

// CountryOf adapts the client to the placement.GroupByASAndLocation
// signature: unknown or unreachable ASes map to "".
func (c *Client) CountryOf(asn uint32) string {
	rec, ok, err := c.Lookup(asn)
	if err != nil || !ok {
		return ""
	}
	return rec.Country
}

// SortedASNs lists a registry's AS numbers in order, for deterministic
// dumps and tests.
func SortedASNs(records map[uint32]Record) []uint32 {
	out := make([]uint32, 0, len(records))
	for asn := range records {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
