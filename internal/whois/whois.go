// Package whois implements the RFC 3912 query/response protocol for the
// AS registry: the observable source of the "AS numbers and geographical
// locations" the paper's proxy-placement strategy 2 groups by, and of the
// AS information its future-work section wants for error reduction. One
// query ("AS7018\r\n") yields a text record; the registry content derives
// from the ground-truth world via bgpsim.ASRegistry.
package whois

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/retry"
)

// Record is one AS registry entry.
type Record struct {
	ASN     uint32
	Name    string
	Country string
}

// Server answers whois queries over TCP.
type Server struct {
	records map[uint32]Record

	// ReadTimeout bounds how long a connection may take to deliver its
	// one query line; WriteTimeout bounds the response write. Together
	// they guarantee a stalled or malicious client cannot pin a handler
	// goroutine forever.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// MaxRequest caps the query line in bytes (newline included); longer
	// requests are rejected without reading further.
	MaxRequest int
	// Wrap, when non-nil, wraps the listener before serving — the
	// injection point for faultnet.Injector.Listener.
	Wrap func(net.Listener) net.Listener

	mu       sync.Mutex
	listener net.Listener
	done     chan struct{}
	queries  int
	rejected int
}

// NewServer builds a server over a registry snapshot with 10s read/write
// timeouts and a 128-byte request cap (an "ASnnnn\r\n" query is under 14).
func NewServer(records map[uint32]Record) *Server {
	cp := make(map[uint32]Record, len(records))
	for k, v := range records {
		cp[k] = v
	}
	return &Server{
		records:      cp,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
		MaxRequest:   128,
		done:         make(chan struct{}),
	}
}

// QueryCount returns how many queries the server has answered.
func (s *Server) QueryCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// RejectedCount returns how many connections were cut off for exceeding
// MaxRequest or stalling past ReadTimeout.
func (s *Server) RejectedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejected
}

// Start listens on addr ("127.0.0.1:0" for tests) and serves until Close.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("whois: listen: %w", err)
	}
	bound := ln.Addr()
	if s.Wrap != nil {
		ln = s.Wrap(ln)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	go s.serve(ln)
	return bound, nil
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return nil
	default:
		close(s.done)
	}
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

func (s *Server) serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		go s.handle(conn)
	}
}

func (s *Server) countRejected() {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

// handle answers one connection: whois is one query, one response, close.
// The query read is bounded both in time (ReadTimeout) and size
// (MaxRequest), so a client that stalls mid-line or streams garbage
// costs one goroutine for at most ReadTimeout.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if s.ReadTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
	}
	max := s.MaxRequest
	if max <= 0 {
		max = 128
	}
	r := bufio.NewReaderSize(io.LimitReader(conn, int64(max)), max)
	line, err := r.ReadString('\n')
	if err != nil {
		// EOF with a full buffer means the cap was hit before a newline:
		// an oversized request, not a benign disconnect.
		if err == io.EOF && len(line) >= max {
			s.countRejected()
			if s.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
			}
			fmt.Fprintf(conn, "%% error: request exceeds %d bytes\r\n", max)
		} else {
			s.countRejected()
		}
		return
	}
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()

	if s.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
	}
	w := bufio.NewWriter(conn)
	defer w.Flush()
	query := strings.TrimSpace(line)
	asn, ok := parseASQuery(query)
	if !ok {
		fmt.Fprintf(w, "%% error: unsupported query %q (use ASnnnn)\r\n", query)
		return
	}
	rec, found := s.records[asn]
	if !found {
		fmt.Fprintf(w, "%% no entries found for AS%d\r\n", asn)
		return
	}
	fmt.Fprintf(w, "aut-num:    AS%d\r\n", rec.ASN)
	fmt.Fprintf(w, "as-name:    %s\r\n", rec.Name)
	fmt.Fprintf(w, "country:    %s\r\n", strings.ToUpper(rec.Country))
	fmt.Fprintf(w, "source:     SYNTHETIC-REGISTRY\r\n")
}

func parseASQuery(q string) (uint32, bool) {
	q = strings.ToUpper(strings.TrimSpace(q))
	q = strings.TrimPrefix(q, "AS")
	v, err := strconv.ParseUint(q, 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(v), true
}

// Client queries a whois server, caching responses (registry data is
// static over an experiment's lifetime, and strategy-2 grouping asks for
// the same origin ASes repeatedly). Transport failures are retried with
// backoff and, past Breaker's threshold, fail fast.
type Client struct {
	Server  string
	Timeout time.Duration
	// Retries is how many extra attempts a failed fetch gets.
	Retries int
	// Backoff schedules delays between attempts (delay fields only;
	// attempt counts and deadlines derive from Retries and Timeout).
	Backoff retry.Policy
	// Breaker, when non-nil, fails lookups fast while the registry looks
	// dead. NewClient installs one (5 failures, 2s cooldown).
	Breaker *retry.Breaker
	// Dial opens the connection; overridable so tests can interpose a
	// faultnet wrapper client-side. Nil uses net.Dialer.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)

	mu      sync.Mutex
	cache   map[uint32]*Record // nil entry = known-missing
	count   int
	retries int
}

// NewClient returns a client for the server address.
func NewClient(server string) *Client {
	return &Client{
		Server:  server,
		Timeout: 5 * time.Second,
		Retries: 2,
		Backoff: retry.Policy{BaseDelay: 25 * time.Millisecond, MaxDelay: 400 * time.Millisecond, Jitter: 0.5},
		Breaker: retry.NewBreaker(5, 2*time.Second),
		cache:   map[uint32]*Record{},
	}
}

// NetworkQueries returns how many fetch attempts actually went over the
// wire.
func (c *Client) NetworkQueries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// RetryCount returns how many of those were retries after a failure.
func (c *Client) RetryCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries
}

// Lookup fetches the record for asn. ok is false when the registry has no
// entry; transport failures return an error.
func (c *Client) Lookup(asn uint32) (Record, bool, error) {
	return c.LookupContext(context.Background(), asn)
}

// LookupContext is Lookup bounded by ctx.
func (c *Client) LookupContext(ctx context.Context, asn uint32) (Record, bool, error) {
	c.mu.Lock()
	if rec, hit := c.cache[asn]; hit {
		c.mu.Unlock()
		whoisCacheHits.Inc()
		if rec == nil {
			return Record{}, false, nil
		}
		return *rec, true, nil
	}
	c.mu.Unlock()

	lctx, sp := obsv.StartTraceSpan(ctx, "whois.lookup")
	sp.SetAttrInt("asn", int64(asn))

	if c.Breaker != nil && !c.Breaker.Allow() {
		whoisFastFails.Inc()
		ferr := fmt.Errorf("whois: AS%d: %w", asn, retry.ErrOpen)
		sp.SetAttr("breaker", "open")
		sp.Fail(ferr)
		sp.End()
		return Record{}, false, ferr
	}

	policy := c.Backoff
	policy.MaxAttempts = c.Retries + 1
	policy.PerAttempt = c.Timeout
	policy.SpanName = "whois.attempt"

	var rec Record
	var found bool
	attempts, err := policy.Do(lctx, func(ctx context.Context) error {
		var ferr error
		rec, found, ferr = c.fetch(ctx, asn)
		return ferr
	})
	c.mu.Lock()
	if attempts > 1 {
		c.retries += attempts - 1
	}
	c.mu.Unlock()
	if c.Breaker != nil {
		c.Breaker.Record(err)
	}
	sp.SetAttrInt("attempts", int64(attempts))
	sp.SetAttr("breaker", c.Breaker.State())
	if err != nil {
		sp.Fail(err)
		sp.End()
		return Record{}, false, fmt.Errorf("whois: AS%d failed %s", asn, retry.Attempts(attempts, err))
	}
	sp.End()
	c.mu.Lock()
	if found {
		cp := rec
		c.cache[asn] = &cp
	} else {
		c.cache[asn] = nil
	}
	c.mu.Unlock()
	return rec, found, nil
}

// errEmptyResponse marks a connection that closed before delivering any
// record lines — retriable, the peer may have reset us mid-exchange.
var errEmptyResponse = errors.New("whois: empty response")

func (c *Client) fetch(ctx context.Context, asn uint32) (Record, bool, error) {
	whoisQueries.Inc()
	c.mu.Lock()
	c.count++
	c.mu.Unlock()
	dial := c.Dial
	if dial == nil {
		d := net.Dialer{Timeout: c.Timeout}
		dial = d.DialContext
	}
	conn, err := dial(ctx, "tcp", c.Server)
	if err != nil {
		return Record{}, false, fmt.Errorf("whois: dial: %w", err)
	}
	defer conn.Close()
	deadline := time.Now().Add(c.Timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	conn.SetDeadline(deadline)
	if _, err := fmt.Fprintf(conn, "AS%d\r\n", asn); err != nil {
		return Record{}, false, err
	}
	rec := Record{ASN: asn}
	found := false
	sawLine := false
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		sawLine = true
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue // comment / not-found notice
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "as-name":
			rec.Name = val
			found = true
		case "country":
			rec.Country = strings.ToLower(val)
			found = true
		}
	}
	if err := sc.Err(); err != nil {
		return Record{}, false, err
	}
	if !sawLine {
		return Record{}, false, errEmptyResponse
	}
	return rec, found, nil
}

// CountryOf adapts the client to the placement.GroupByASAndLocation
// signature: unknown or unreachable ASes map to "".
func (c *Client) CountryOf(asn uint32) string {
	rec, ok, err := c.Lookup(asn)
	if err != nil || !ok {
		return ""
	}
	return rec.Country
}

// SortedASNs lists a registry's AS numbers in order, for deterministic
// dumps and tests.
func SortedASNs(records map[uint32]Record) []uint32 {
	out := make([]uint32, 0, len(records))
	for asn := range records {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
