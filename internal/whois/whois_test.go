package whois

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func testRecords() map[uint32]Record {
	return map[uint32]Record{
		7018: {ASN: 7018, Name: "Ficus Networks", Country: "us"},
		701:  {ASN: 701, Name: "Cedar Telecom", Country: "jp"},
		64:   {ASN: 64, Name: "Acorn Systems", Country: "za"},
	}
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(testRecords())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func TestLookupKnownAS(t *testing.T) {
	_, addr := startServer(t)
	c := NewClient(addr)
	rec, ok, err := c.Lookup(7018)
	if err != nil || !ok {
		t.Fatalf("Lookup = %+v %v %v", rec, ok, err)
	}
	if rec.Name != "Ficus Networks" || rec.Country != "us" || rec.ASN != 7018 {
		t.Fatalf("record = %+v", rec)
	}
}

func TestLookupUnknownAS(t *testing.T) {
	_, addr := startServer(t)
	c := NewClient(addr)
	if _, ok, err := c.Lookup(9999); err != nil || ok {
		t.Fatalf("unknown AS: ok=%v err=%v", ok, err)
	}
}

func TestClientCaching(t *testing.T) {
	srv, addr := startServer(t)
	c := NewClient(addr)
	for i := 0; i < 5; i++ {
		if _, ok, err := c.Lookup(701); err != nil || !ok {
			t.Fatal(err)
		}
		if _, ok, _ := c.Lookup(9999); ok {
			t.Fatal("unknown became known")
		}
	}
	if c.NetworkQueries() != 2 {
		t.Fatalf("network queries = %d, want 2 (cached afterwards)", c.NetworkQueries())
	}
	if srv.QueryCount() != 2 {
		t.Fatalf("server saw %d queries", srv.QueryCount())
	}
}

func TestCountryOf(t *testing.T) {
	_, addr := startServer(t)
	c := NewClient(addr)
	if got := c.CountryOf(701); got != "jp" {
		t.Fatalf("CountryOf(701) = %q", got)
	}
	if got := c.CountryOf(9999); got != "" {
		t.Fatalf("CountryOf(unknown) = %q", got)
	}
	// Unreachable server degrades to "".
	dead := NewClient("127.0.0.1:1")
	dead.Timeout = 200 * time.Millisecond
	if got := dead.CountryOf(7018); got != "" {
		t.Fatalf("CountryOf via dead server = %q", got)
	}
}

func TestRawProtocol(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "as64\r\n") // lowercase accepted
	buf := make([]byte, 1024)
	n, _ := conn.Read(buf)
	resp := string(buf[:n])
	for _, want := range []string{"aut-num:    AS64", "as-name:    Acorn Systems", "country:    ZA"} {
		if !strings.Contains(resp, want) {
			t.Errorf("response missing %q:\n%s", want, resp)
		}
	}
}

func TestUnsupportedQuery(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "1.2.3.4\r\n")
	buf := make([]byte, 256)
	n, _ := conn.Read(buf)
	if !strings.Contains(string(buf[:n]), "% error") {
		t.Fatalf("response = %q", string(buf[:n]))
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(addr)
			for j := 0; j < 10; j++ {
				if _, ok, err := c.Lookup(7018); err != nil || !ok {
					t.Errorf("concurrent lookup failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSortedASNs(t *testing.T) {
	got := SortedASNs(testRecords())
	want := []uint32{64, 701, 7018}
	if len(got) != len(want) {
		t.Fatalf("SortedASNs = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SortedASNs = %v, want %v", got, want)
		}
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
