// Package netcluster is a network-aware web-client clustering library: a
// complete reproduction of Krishnamurthy & Wang, "On Network-Aware
// Clustering of Web Clients" (SIGCOMM 2000).
//
// The central operation groups the client IP addresses found in a web
// server log into clusters — sets of clients that are topologically close
// and likely under common administrative control — by longest-prefix
// matching each address against a table merged from BGP routing-table
// snapshots:
//
//	table := netcluster.NewTable()
//	table.Add(snapshot)                   // from netcluster.ReadSnapshot
//	log, _ := netcluster.ReadLog(f, "nagano")
//	result := netcluster.ClusterLog(log, netcluster.NetworkAware{Table: table})
//
// Around that core the package exposes the paper's full pipeline:
//
//   - baseline clusterers (Simple /24 and Classful) for comparison;
//   - validation by DNS-name and traceroute path-suffix sampling;
//   - self-correction (merge/split/absorb) driven by probe sampling;
//   - spider and proxy detection from per-cluster access patterns;
//   - a trace-driven web-caching simulation with per-cluster proxies
//     running LRU + piggyback cache validation;
//   - a synthetic Internet (ground-truth networks, BGP vantage views with
//     aggregation and daily churn, DNS, traceroute) standing in for the
//     1999 data sources the paper consumed, so every experiment is
//     reproducible offline.
//
// The implementation lives in internal packages; this package re-exports
// the supported surface as type aliases, so downstream code imports only
// github.com/netaware/netcluster.
package netcluster

import (
	"context"
	"io"
	"net/http"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/churn"
	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/detect"
	"github.com/netaware/netcluster/internal/dnssim"
	"github.com/netaware/netcluster/internal/httpproxy"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/obsv/sink"
	"github.com/netaware/netcluster/internal/placement"
	"github.com/netaware/netcluster/internal/selfcorrect"
	"github.com/netaware/netcluster/internal/shard"
	"github.com/netaware/netcluster/internal/tracesim"
	"github.com/netaware/netcluster/internal/validate"
	"github.com/netaware/netcluster/internal/weblog"
	"github.com/netaware/netcluster/internal/websim"
)

// Addressing primitives.
type (
	// Addr is an IPv4 address.
	Addr = netutil.Addr
	// Prefix is an IPv4 network prefix (address + mask length).
	Prefix = netutil.Prefix
)

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) { return netutil.ParseAddr(s) }

// ParsePrefix parses CIDR "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) { return netutil.ParsePrefix(s) }

// MustParseAddr is ParseAddr for trusted constants; it panics on error.
func MustParseAddr(s string) Addr { return netutil.MustParseAddr(s) }

// MustParsePrefix is ParsePrefix for trusted constants; it panics on error.
func MustParsePrefix(s string) Prefix { return netutil.MustParsePrefix(s) }

// Routing-table snapshots and the merged prefix table.
type (
	// Snapshot is one routing-table or network-registry dump.
	Snapshot = bgp.Snapshot
	// Entry is one snapshot row.
	Entry = bgp.Entry
	// SourceKind distinguishes BGP tables from registry network dumps.
	SourceKind = bgp.SourceKind
	// Table is the merged prefix/netmask table clustering consumes.
	Table = bgp.Merged
)

// Snapshot source kinds.
const (
	SourceBGP         = bgp.SourceBGP
	SourceNetworkDump = bgp.SourceNetworkDump
)

// NewTable returns an empty merged prefix table; Add snapshots to it.
func NewTable() *Table { return bgp.NewMerged() }

// CompiledTable is an immutable, read-optimized snapshot of a Table: the
// primary/secondary precedence is folded into a single flat-array
// stride-8 structure, so one lookup replaces two tree walks and any
// number of goroutines can read it without locks. Build one with
// Table.Compile (or NetworkAware.Compile) after the table is fully
// populated.
type CompiledTable = bgp.Compiled

// TableMatch is one longest-prefix-match answer from a CompiledTable:
// the winning prefix and which source class supplied it. The zero
// TableMatch (Prefix.IsZero()) means no prefix covered the address.
type TableMatch = bgp.Match

// Table snapshots: the versioned, checksummed on-disk form of a
// CompiledTable. Save once (or with `tabletool compile`), then boot any
// process from the file — OpenTable maps it zero-copy where the platform
// allows and falls back to a validated copying load elsewhere, and
// clusterd's -table-snapshot flag serves straight from one.
type TableFile = bgp.TableFile

// SaveTable atomically writes c's snapshot to path.
func SaveTable(path string, c *CompiledTable) error { return bgp.SaveTable(path, c) }

// OpenTable opens a table snapshot, preferring the zero-copy mmap load.
// Close the returned TableFile when the table is no longer referenced.
func OpenTable(path string) (*TableFile, error) { return bgp.OpenTable(path) }

// MarshalTable serializes c to its snapshot wire form. Output is
// deterministic: the same compiled table always marshals to the same
// bytes.
func MarshalTable(c *CompiledTable) ([]byte, error) { return bgp.MarshalTable(c) }

// ReadTable decodes a marshaled snapshot with full checksum and
// structural validation; corrupt or version-skewed input returns an
// error, never a panic.
func ReadTable(data []byte) (*CompiledTable, error) { return bgp.ReadTable(data) }

// NewStaticChurnTable wraps a snapshot-loaded CompiledTable as a
// generation-0 ChurnTable with no delta stream behind it — the
// serving surface of a snapshot-booted service.
func NewStaticChurnTable(c *CompiledTable) *ChurnTable { return churn.NewStatic(c) }

// Online churn: a long-running table that absorbs BGP announce/withdraw
// deltas without recompiling, publishing each new generation RCU-style
// (immutable CompiledTable snapshots behind an atomic pointer). This is
// the substrate of the clusterd service.
type (
	// ChurnTable is a concurrently-readable table under a delta stream.
	ChurnTable = churn.Table
	// Delta is one batch of announce/withdraw operations.
	Delta = bgp.Delta
	// Op is a single announce or withdraw.
	Op = bgp.Op
	// SwapStats classifies one generation swap's effect on cluster
	// identity: carryover, splits, merges, moves, gains, losses.
	SwapStats = churn.SwapStats
	// ChurnConfig parameterizes the synthetic bursty churn schedule.
	ChurnConfig = bgpsim.ChurnConfig
	// ChurnGen draws bursty announce/withdraw batches over a snapshot's
	// prefix universe.
	ChurnGen = bgpsim.ChurnGen
)

// NewChurnTable seeds an online table from a merged table; Apply deltas
// to advance generations while readers keep using Lookup.
func NewChurnTable(m *Table) *ChurnTable { return churn.New(m) }

// DiffSnapshots computes the delta turning old's prefix set into new's —
// the offline analogue of a live churn feed.
func DiffSnapshots(old, new *Snapshot) Delta { return bgpsim.Diff(old, new) }

// DefaultChurnConfig is a ~1% mean batch schedule with occasional bursts.
func DefaultChurnConfig() ChurnConfig { return bgpsim.DefaultChurnConfig() }

// NewChurnGen builds a churn generator over base's prefix universe.
func NewChurnGen(base *Snapshot, cfg ChurnConfig) *ChurnGen { return bgpsim.NewChurnGen(base, cfg) }

// Sharded cluster: the multi-node deployment of the churn table. A
// compiler node sequences every delta onto an HTTP feed, follower nodes
// keep their shard's slice of the table in generation lockstep, and a
// router fans batch clustering out across the shard map and merges the
// answers back into input order — degrading per-shard, never answering
// wrong. See cmd/clusterd (-feed-serve, -feed, -shard-index) and
// cmd/clusterrouter for the deployable form.
type (
	// ShardMap tiles the 256 /8 blocks across a cluster's nodes.
	ShardMap = shard.Map
	// ShardInfo is one node's contiguous block range and base URL.
	ShardInfo = shard.Info
	// DeltaFeed sequences and serves a table's deltas over HTTP, with a
	// catch-up snapshot for joiners that outrun the retained log.
	DeltaFeed = shard.Feed
	// DeltaFollower tails a DeltaFeed, keeping a local ChurnTable in
	// lockstep (optionally filtered to a shard's prefix range).
	DeltaFollower = shard.Follower
	// ShardRouter fans batches across the map and merges input-order.
	ShardRouter = shard.Router
	// ShardRouterConfig configures a ShardRouter over a ShardMap.
	ShardRouterConfig = shard.RouterConfig
	// MetricsAggregator federates the shard nodes' metric registries
	// behind a router: per-shard labeled series plus cluster-wide
	// quantiles merged exactly from the shards' log2 buckets.
	MetricsAggregator = shard.Aggregator
	// TableMeta is the snapshot sidecar recording a table's generation
	// and delta-stream position, enabling warm starts.
	TableMeta = bgp.TableMeta
)

// NewShardMap tiles the /8 blocks evenly across n shards (version 1).
func NewShardMap(n int) *ShardMap { return shard.NewMap(n) }

// NewDeltaFeed wraps a churn table as the cluster's sequenced delta
// source; maxLog bounds the retained catch-up log (0: default).
func NewDeltaFeed(t *ChurnTable, maxLog int) *DeltaFeed { return shard.NewFeed(t, maxLog) }

// JoinDeltaFeed seeds a follower from a feed's snapshot endpoint and
// returns it ready to poll; keep (optional) restricts the local table
// to a shard's range.
func JoinDeltaFeed(base string, client *http.Client, keep func(Prefix) bool) (*DeltaFollower, error) {
	return shard.Join(base, client, keep)
}

// NewShardRouter validates the map (every shard needs an Addr) and
// returns the fan-out router over it.
func NewShardRouter(cfg ShardRouterConfig) (*ShardRouter, error) { return shard.NewRouter(cfg) }

// WarmStartChurnTable rebuilds a live churn table around a snapshot-
// loaded CompiledTable at generation gen — the boot path that lets a
// restarted service rejoin the delta stream instead of serving a
// frozen table. keep (optional) restricts it to a shard's range.
func WarmStartChurnTable(c *CompiledTable, keep func(Prefix) bool, gen uint64) *ChurnTable {
	return churn.NewFromCompiled(c, keep, gen)
}

// SaveTableMeta writes path's .meta sidecar (atomic rename).
func SaveTableMeta(path string, m TableMeta) error { return bgp.SaveTableMeta(path, m) }

// LoadTableMeta reads path's .meta sidecar; ok=false means no sidecar
// (a pre-sidecar snapshot), which is not an error.
func LoadTableMeta(path string) (m TableMeta, ok bool, err error) { return bgp.LoadTableMeta(path) }

// ReadSnapshot parses a snapshot dump (see internal/bgp for the format;
// prefix fields accept CIDR, dotted-netmask, and classful notations).
func ReadSnapshot(r io.Reader) (*Snapshot, error) { return bgp.ReadSnapshot(r) }

// ParsePrefixEntry parses a single prefix field in any of the three
// 1999-era dump notations.
func ParsePrefixEntry(s string) (Prefix, error) { return bgp.ParsePrefixEntry(s) }

// Web server logs.
type (
	// Log is an in-memory access log.
	Log = weblog.Log
	// Request is one log line.
	Request = weblog.Request
	// Resource is one distinct URL with its size and change behaviour.
	Resource = weblog.Resource
)

// ReadLog parses a Common Log Format (plain or combined) stream.
func ReadLog(r io.Reader, name string) (*Log, error) { return weblog.ReadCLF(r, name) }

// WriteLog serializes a log in combined log format.
func WriteLog(w io.Writer, l *Log) error { return weblog.WriteCLF(w, l) }

// Clustering.
type (
	// Clusterer assigns a client address to its cluster prefix.
	Clusterer = cluster.Clusterer
	// BatchClusterer resolves many addresses in one call with the same
	// answers as per-address Cluster; the parallel engines detect it and
	// route their per-shard client sets through the batch lookup kernel.
	// NetworkAware implements it.
	BatchClusterer = cluster.BatchClusterer
	// NetworkAware is the paper's method: longest-prefix match against a
	// merged routing table.
	NetworkAware = cluster.NetworkAware
	// Simple is the first-24-bits baseline.
	Simple = cluster.Simple
	// Classful is the address-class baseline.
	Classful = cluster.Classful
	// Cluster is one identified client cluster.
	Cluster = cluster.Cluster
	// Result is the outcome of clustering a log.
	Result = cluster.Result
	// Thresholding is the busy-cluster cut of Section 4.1.3.
	Thresholding = cluster.Thresholding
)

// ClusterLog groups every client in l according to c.
func ClusterLog(l *Log, c Clusterer) *Result { return cluster.ClusterLog(l, c) }

// StreamResult is the single-pass clustering outcome for streamed logs.
type StreamResult = cluster.StreamResult

// ClusterStream clusters a Common Log Format stream in one pass and
// constant memory — for logs too large to load, or for the paper's
// real-time clustering of very recent log data.
func ClusterStream(r io.Reader, c Clusterer) (*StreamResult, error) {
	return cluster.ClusterStream(r, c)
}

// ParallelOptions tunes the parallel clustering engines; the zero value
// uses GOMAXPROCS workers.
type ParallelOptions = cluster.ParallelOptions

// ClusterLogParallel is ClusterLog distributed across multiple workers
// with a deterministic merge: the Result is identical to ClusterLog's.
// The Clusterer must be safe for concurrent use (NetworkAware, Simple and
// Classful all are; compile a NetworkAware table first for the fastest
// lock-free lookups).
func ClusterLogParallel(l *Log, c Clusterer, opts ParallelOptions) *Result {
	return cluster.ClusterLogParallel(l, c, opts)
}

// ClusterStreamParallel is ClusterStream with parsing on one goroutine
// and cluster accumulation sharded across workers by client-address
// hash. The StreamResult is identical to ClusterStream's.
func ClusterStreamParallel(r io.Reader, c Clusterer, opts ParallelOptions) (*StreamResult, error) {
	return cluster.ClusterStreamParallel(r, c, opts)
}

// Bounded-memory (firehose) clustering: the Section 4.1.3 busy-cluster
// view computed in O(K + sketch) space however many clusters the
// stream touches — K exact heavy hitters via a space-saving summary,
// the tail answerable within ε·N via a conservative count-min sketch.
type (
	// BoundedConfig sizes a bounded accumulator (K, capacity, ε, δ, spill).
	BoundedConfig = cluster.BoundedConfig
	// BoundedAccumulator is the fixed-memory cluster accumulator itself.
	BoundedAccumulator = cluster.BoundedAccumulator
	// BusyCluster is one entry of a bounded accumulator's top-K report.
	BusyCluster = cluster.BusyCluster
	// SpillPolicy selects what happens to evicted clusters.
	SpillPolicy = cluster.SpillPolicy
	// BoundedStreamResult is one bounded pass's outcome over a CLF stream.
	BoundedStreamResult = cluster.BoundedStreamResult
)

// Spill policies for BoundedConfig.
const (
	SpillSketch = cluster.SpillSketch
	SpillDrop   = cluster.SpillDrop
)

// NewBoundedAccumulator builds an empty bounded accumulator; the zero
// BoundedConfig gets serviceable defaults.
func NewBoundedAccumulator(cfg BoundedConfig) (*BoundedAccumulator, error) {
	return cluster.NewBoundedAccumulator(cfg)
}

// ClusterStreamBounded clusters a Common Log Format stream in one pass
// and *fixed* memory — unlike ClusterStream, whose per-cluster map
// grows with the number of distinct clusters, this holds only the
// configured summary however long the stream runs. The price is
// exactness outside the top K: evicted clusters answer within the
// sketch error bound instead of precisely.
func ClusterStreamBounded(r io.Reader, c Clusterer, cfg BoundedConfig) (*BoundedStreamResult, error) {
	return cluster.ClusterStreamBounded(r, c, cfg)
}

// Validation.
type (
	// ValidationReport aggregates sampled validation verdicts (Table 3).
	ValidationReport = validate.Report
	// ClusterVerdict is the validation outcome for one cluster.
	ClusterVerdict = validate.ClusterVerdict
)

// SampleClusters draws a deterministic random sample of clusters for
// validation; the paper samples 1%.
func SampleClusters(clusters []*Cluster, frac float64, seed int64) []*Cluster {
	return validate.Sample(clusters, frac, seed)
}

// Detection of spiders and proxies.
type (
	// Finding is one suspected spider or proxy.
	Finding = detect.Finding
	// DetectConfig tunes the detector.
	DetectConfig = detect.Config
)

// Detection outcome kinds and confidence levels.
const (
	KindSpider          = detect.Spider
	KindProxy           = detect.Proxy
	ConfidenceConfirmed = detect.Confirmed
	ConfidenceSuspected = detect.Suspected
)

// DefaultDetectConfig returns thresholds reproducing the paper's examples.
func DefaultDetectConfig() DetectConfig { return detect.DefaultConfig() }

// DetectRobots scans a clustering result for spiders and proxies.
func DetectRobots(res *Result, cfg DetectConfig) []Finding { return detect.Detect(res, cfg) }

// Eliminate returns a copy of the log without requests from the given
// clients (the paper's pre-caching cleanup).
func Eliminate(l *Log, clients map[Addr]bool) *Log { return detect.Eliminate(l, clients) }

// FindingClients collects finding clients in a form Eliminate accepts.
func FindingClients(fs []Finding, kinds ...detect.Kind) map[Addr]bool {
	return detect.FindingClients(fs, kinds...)
}

// Web caching simulation.
type (
	// SimConfig parameterizes a caching simulation run.
	SimConfig = websim.Config
	// SimOutcome aggregates one run's results.
	SimOutcome = websim.Outcome
	// ProxyOutcome reports one cluster proxy's performance.
	ProxyOutcome = websim.ProxyOutcome
)

// DefaultSimConfig mirrors the paper's setup: 1 h TTL, PCV on, 10-access
// URL floor.
func DefaultSimConfig() SimConfig { return websim.DefaultConfig() }

// Simulate replays a clustered log through per-cluster proxy caches.
func Simulate(res *Result, cfg SimConfig) SimOutcome { return websim.Simulate(res, cfg) }

// SimulateSweep runs Simulate across proxy cache sizes (Figure 11).
func SimulateSweep(res *Result, cfg SimConfig, sizes []int64) []SimOutcome {
	return websim.Sweep(res, cfg, sizes)
}

// MultiOutcome aggregates a multi-server simulation run.
type MultiOutcome = websim.MultiOutcome

// SimulateMulti replays several clustered logs (one per origin server)
// through one shared fleet of per-cluster proxies — the paper's
// multi-server extension of the caching simulation.
func SimulateMulti(results []*Result, cfg SimConfig) (MultiOutcome, error) {
	return websim.SimulateMulti(results, cfg)
}

// Proxy placement (Section 4.1.4).
type (
	// PlacementMetric selects the load measure that sizes proxy counts.
	PlacementMetric = placement.Metric
	// PlacementPlan is a per-busy-cluster proxy allocation.
	PlacementPlan = placement.Plan
	// ProxyGroup is a set of proxies grouped by origin AS.
	ProxyGroup = placement.ProxyCluster
)

// Placement load metrics.
const (
	PlaceByClients  = placement.ByClients
	PlaceByRequests = placement.ByRequests
	PlaceByURLs     = placement.ByURLs
	PlaceByBytes    = placement.ByBytes
)

// PlanPlacement builds a strategy-1 plan: every busy cluster receives
// proxies proportional to its load.
func PlanPlacement(res *Result, coverFrac float64, metric PlacementMetric, perProxy int64) (PlacementPlan, error) {
	return placement.PerCluster(res, coverFrac, metric, perProxy)
}

// GroupProxiesByAS buckets a plan's proxies into cooperating proxy
// clusters by the origin AS of each cluster's prefix (strategy 2).
func GroupProxiesByAS(plan PlacementPlan, table *Table) []ProxyGroup {
	return placement.GroupByAS(plan, table)
}

// GroupProxiesByASAndLocation additionally splits by country via a
// whois-style AS→country lookup, the paper's full strategy 2.
func GroupProxiesByASAndLocation(plan PlacementPlan, table *Table, countryOf func(asn uint32) string) []ProxyGroup {
	return placement.GroupByASAndLocation(plan, table, countryOf)
}

// ASInfo is a whois-style AS registry record.
type ASInfo = bgpsim.ASInfo

// HTTPProxy is a runnable HTTP implementation of the caching proxy the
// simulation models: TTL freshness, If-Modified-Since revalidation,
// piggyback cache validation, LRU eviction. Deploy one in front of each
// identified cluster (see cmd/pcvproxy).
type HTTPProxy = httpproxy.Proxy

// HTTPProxyStats mirrors the simulation's cache statistics for measured
// deployments.
type HTTPProxyStats = httpproxy.Stats

// NewHTTPProxy returns a caching proxy for the origin base URL with the
// paper's defaults (1 h TTL, PCV on).
func NewHTTPProxy(origin string) (*HTTPProxy, error) { return httpproxy.New(origin) }

// MetricsSnapshot is a point-in-time copy of the library's process-wide
// metric registry: counters, gauges and log2-bucketed histograms from
// every instrumented subsystem (table compilation, lookups, clustering
// engines, CLF parsing, caches, wire clients). It marshals to
// deterministic, key-sorted JSON.
type MetricsSnapshot = obsv.Snapshot

// Metrics returns a snapshot of the library's internal metrics. The
// registry is cumulative for the process lifetime; diff two snapshots to
// meter one workload. The same data is exposed as the expvar variable
// "netcluster" on any /debug/vars endpoint the embedding process serves.
func Metrics() MetricsSnapshot { return obsv.TakeSnapshot() }

// MetricsHandler returns an http.Handler serving /debug/vars (expvar
// JSON including the metric registry), /debug/pprof, /metrics
// (Prometheus text exposition with histogram buckets and derived
// quantiles) and /debug/trace (the flight recorder as Chrome trace_event
// JSON), for mounting on a private operational listener (see
// cmd/pcvproxy's -metrics-addr).
func MetricsHandler() http.Handler { return obsv.DebugHandler() }

// TraceHandler returns an http.Handler that dumps the flight recorder —
// the always-on, fixed-size ring of recently completed trace spans — as
// Chrome trace_event JSON, openable directly in chrome://tracing or
// Perfetto. MetricsHandler already mounts it at /debug/trace; use this to
// mount the dump elsewhere.
func TraceHandler() http.Handler { return obsv.TraceHandler() }

// WriteTrace writes the flight recorder's current contents to path as
// Chrome trace_event JSON (what clusterctl and experiments emit for
// -trace-out).
func WriteTrace(path string) error { return obsv.WriteTraceFile(path) }

// TraceHeader is the HTTP header that carries a span context across
// process boundaries (traceparent-shaped:
// "00-<32 hex trace id>-<16 hex span id>-<2 hex flags>"). The shard
// router stamps it on fan-out requests and clusterd extracts it, so one
// TraceID spans a whole cluster's flight recorders; embedders can join
// their own callers' traces with InjectTrace/ExtractTrace.
const TraceHeader = obsv.TraceHeader

// InjectTrace stamps ctx's span context (if any) onto h as the
// TraceHeader, making an outbound request part of the current trace.
func InjectTrace(ctx context.Context, h http.Header) { obsv.HTTPInject(ctx, h) }

// ExtractTrace returns ctx carrying the span context from h's
// TraceHeader, or ctx unchanged if the header is absent or malformed —
// a bad caller costs itself its trace, never the request.
func ExtractTrace(ctx context.Context, h http.Header) context.Context {
	return obsv.HTTPExtract(ctx, h)
}

// MergeTraces stitches per-process flight-recorder dumps (Chrome
// trace_event JSON, e.g. each node's /debug/trace) into one trace with
// a named process lane group per input — what `tracecheck -merge`
// writes and chrome://tracing renders as one cluster-wide timeline.
func MergeTraces(names []string, dumps [][]byte) ([]byte, error) {
	return obsv.MergeChromeTraces(names, dumps)
}

// Push export: the durable counterpart to the pull surfaces above. A
// SinkManager ships metric deltas to declared backends (HTTP push, a
// newline-JSON file journal, UDP) with write-ahead durability — batches
// are WAL-journaled before the first delivery attempt, retried with
// backoff and a circuit breaker, and deduplicable by sequence number at
// the receiver — so a dead collector never blocks the pipeline and
// never silently loses more than the configured budget.
type (
	// SinkSpec declares one push sink (name, type "http"|"file"|"udp",
	// endpoint or path).
	SinkSpec = sink.Spec
	// SinkManager reconciles a live set of exporters against specs;
	// Apply hot-swaps endpoints without losing queued backlog.
	SinkManager = sink.Manager
	// SinkOptions configures a SinkManager.
	SinkOptions = sink.Options
	// SinkStatus is one exporter's operational position.
	SinkStatus = sink.SinkStatus
)

// NewSinkManager returns a push-export manager whose per-sink WALs live
// under dir. Declare sinks with Apply; flush and stop with Close.
func NewSinkManager(dir string, opts SinkOptions) *SinkManager { return sink.NewManager(dir, opts) }

// Synthetic world: the offline substitute for the paper's live data
// sources. Generate a world once, derive BGP views, logs, DNS and
// traceroute from it.
type (
	// World is a generated ground-truth Internet.
	World = inet.Internet
	// WorldConfig controls world generation.
	WorldConfig = inet.Config
	// Network is one administratively uniform ground-truth subnet.
	Network = inet.Network
	// BGPSim derives vantage-point views from a world.
	BGPSim = bgpsim.Sim
	// BGPSimConfig controls announcement behaviour.
	BGPSimConfig = bgpsim.Config
	// ViewConfig describes one vantage point.
	ViewConfig = bgpsim.ViewConfig
	// LogConfig parameterizes synthetic log generation.
	LogConfig = weblog.GenConfig
	// Resolver simulates reverse DNS over a world.
	Resolver = dnssim.Resolver
	// Tracer simulates (optimized) traceroute over a world.
	Tracer = tracesim.Tracer
	// Corrector runs the self-correction and adaptation stage.
	Corrector = selfcorrect.Corrector
	// CorrectionOutcome summarizes one self-correction pass.
	CorrectionOutcome = selfcorrect.Outcome
	// NetworkCluster is a second-level group of client clusters sharing
	// upstream infrastructure (Section 3.6).
	NetworkCluster = selfcorrect.NetworkCluster
)

// DefaultWorldConfig returns the scale used by the headline experiments.
func DefaultWorldConfig() WorldConfig { return inet.DefaultConfig() }

// GenerateWorld builds a deterministic synthetic Internet.
func GenerateWorld(cfg WorldConfig) (*World, error) { return inet.Generate(cfg) }

// WriteWorld serializes a world so separate processes can share one exact
// ground truth (see cmd/worldgen).
func WriteWorld(w io.Writer, world *World) error { return inet.WriteWorld(w, world) }

// ReadWorld deserializes a world written by WriteWorld.
func ReadWorld(r io.Reader) (*World, error) { return inet.ReadWorld(r) }

// NewBGPSim fixes a world's route-announcement behaviour.
func NewBGPSim(w *World, cfg BGPSimConfig) *BGPSim { return bgpsim.New(w, cfg) }

// DefaultBGPSimConfig mirrors the paper's observed error rates.
func DefaultBGPSimConfig() BGPSimConfig { return bgpsim.DefaultConfig() }

// StandardViews mirrors the paper's Table 1 source list.
func StandardViews() []ViewConfig { return bgpsim.StandardViews() }

// CollectAndMerge generates every standard view plus registry dumps and
// merges them into a clustering table.
func CollectAndMerge(s *BGPSim) *Table { return bgpsim.Merge(s.Collect()) }

// GenerateLog synthesizes a server log over a world.
func GenerateLog(w *World, cfg LogConfig) (*Log, error) { return weblog.Generate(w, cfg) }

// StreamGen is the endless record-at-a-time form of GenerateLog: same
// profiles, same determinism under a fixed seed, O(clients) memory
// however many records are drawn. It is what cmd/loadgen replays from.
type StreamGen = weblog.StreamGen

// NewStreamGen builds a streaming generator over a world.
func NewStreamGen(w *World, cfg LogConfig) (*StreamGen, error) { return weblog.NewStreamGen(w, cfg) }

// NaganoProfile returns the paper's primary trace shape at the given
// scale (1.0 = the paper's published counts). ApacheProfile, EW3Profile
// and SunProfile cover the other traces.
func NaganoProfile(scale float64) LogConfig { return weblog.Nagano(scale) }

// ApacheProfile returns the large popular-site trace shape.
func ApacheProfile(scale float64) LogConfig { return weblog.Apache(scale) }

// EW3Profile returns the small-site trace shape.
func EW3Profile(scale float64) LogConfig { return weblog.EW3(scale) }

// SunProfile returns the trace with the canonical spider and proxy.
func SunProfile(scale float64) LogConfig { return weblog.Sun(scale) }

// NewResolver returns a reverse-DNS resolver over a world.
func NewResolver(w *World) *Resolver { return dnssim.New(w) }

// NewTracer returns a traceroute simulator probing from origin.
func NewTracer(w *World, origin *inet.AS) *Tracer { return tracesim.New(w, origin) }

// ValidateNslookup runs the DNS suffix validation over sampled clusters.
func ValidateNslookup(w *World, r *Resolver, sampled []*Cluster) ValidationReport {
	return validate.Nslookup(w, r, sampled)
}

// ValidateTraceroute runs the optimized-traceroute validation.
func ValidateTraceroute(w *World, r *Resolver, t *Tracer, sampled []*Cluster) ValidationReport {
	return validate.Traceroute(w, r, t, sampled)
}
