package netcluster_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	netcluster "github.com/netaware/netcluster"
)

// The facade tests exercise the full public pipeline exactly as a
// downstream user would: world → tables → log → cluster → validate →
// detect → simulate. Shared fixtures are built once.
type fixture struct {
	world *netcluster.World
	table *netcluster.Table
	log   *netcluster.Log
	na    *netcluster.Result
	si    *netcluster.Result
}

var (
	fixOnce sync.Once
	fix     fixture
)

func setup(t testing.TB) *fixture {
	fixOnce.Do(func() {
		wcfg := netcluster.DefaultWorldConfig()
		wcfg.NumASes = 500
		world, err := netcluster.GenerateWorld(wcfg)
		if err != nil {
			panic(err)
		}
		sim := netcluster.NewBGPSim(world, netcluster.DefaultBGPSimConfig())
		table := netcluster.CollectAndMerge(sim)
		l, err := netcluster.GenerateLog(world, netcluster.NaganoProfile(0.02))
		if err != nil {
			panic(err)
		}
		fix = fixture{
			world: world,
			table: table,
			log:   l,
			na:    netcluster.ClusterLog(l, netcluster.NetworkAware{Table: table}),
			si:    netcluster.ClusterLog(l, netcluster.Simple{}),
		}
	})
	return &fix
}

func TestPublicAddressing(t *testing.T) {
	a, err := netcluster.ParseAddr("12.65.147.94")
	if err != nil {
		t.Fatal(err)
	}
	p, err := netcluster.ParsePrefix("12.65.128.0/19")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(a) {
		t.Error("prefix must contain address")
	}
	if netcluster.MustParseAddr("1.2.3.4").String() != "1.2.3.4" {
		t.Error("round trip failed")
	}
	if _, err := netcluster.ParsePrefixEntry("12.65.128/255.255.224"); err != nil {
		t.Errorf("netmask notation: %v", err)
	}
}

func TestPublicSnapshotReading(t *testing.T) {
	in := "# name: AADS\n# kind: bgp\n# date: 12/7/1999\n12.65.128.0/19|AT&T|||\n18.0.0.0\n"
	snap, err := netcluster.ReadSnapshot(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Name != "AADS" || len(snap.Entries) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	table := netcluster.NewTable()
	table.Add(snap)
	m, ok := table.Lookup(netcluster.MustParseAddr("12.65.147.94"))
	if !ok || m.Prefix.String() != "12.65.128.0/19" {
		t.Fatalf("lookup = %+v, %v", m, ok)
	}
}

func TestPublicPipeline(t *testing.T) {
	f := setup(t)
	// The paper reports 99.9% on real logs; small synthetic worlds have
	// high variance (one dark allocation missed by both registries costs a
	// whole network of clients), so the bar here is slightly lower.
	if f.na.Coverage() < 0.985 {
		t.Errorf("network-aware coverage = %.4f, want ≥ 0.985", f.na.Coverage())
	}
	if len(f.si.Clusters) <= len(f.na.Clusters) {
		t.Errorf("simple must fragment: %d vs %d clusters",
			len(f.si.Clusters), len(f.na.Clusters))
	}
	th := f.na.ThresholdBusy(0.70)
	if len(th.Busy) == 0 || len(th.Busy) >= len(f.na.Clusters) {
		t.Errorf("thresholding kept %d of %d", len(th.Busy), len(f.na.Clusters))
	}
}

func TestPublicValidation(t *testing.T) {
	f := setup(t)
	resolver := netcluster.NewResolver(f.world)
	tracer := netcluster.NewTracer(f.world, f.world.VantageASes()[0])
	sampled := netcluster.SampleClusters(f.na.Clusters, 0.05, 7)
	ns := netcluster.ValidateNslookup(f.world, resolver, sampled)
	tr := netcluster.ValidateTraceroute(f.world, resolver, tracer, sampled)
	if ns.PassRate() < 0.85 || tr.PassRate() < 0.85 {
		t.Errorf("pass rates = %.2f / %.2f, want ≥ 0.85 (paper: >0.90)",
			ns.PassRate(), tr.PassRate())
	}
}

func TestPublicDetectionAndSimulation(t *testing.T) {
	f := setup(t)
	findings := netcluster.DetectRobots(f.si, netcluster.DefaultDetectConfig())
	clean := netcluster.Eliminate(f.log, netcluster.FindingClients(findings, netcluster.KindSpider))
	if len(clean.Requests) > len(f.log.Requests) {
		t.Fatal("elimination grew the log")
	}
	out := netcluster.Simulate(f.na, netcluster.DefaultSimConfig())
	if out.HitRatio <= 0 || out.HitRatio >= 1 {
		t.Errorf("hit ratio = %.3f", out.HitRatio)
	}
	sweep := netcluster.SimulateSweep(f.na, netcluster.DefaultSimConfig(),
		[]int64{100 << 10, 10 << 20})
	if sweep[1].HitRatio+0.02 < sweep[0].HitRatio {
		t.Errorf("bigger cache lowered hit ratio: %.3f -> %.3f",
			sweep[0].HitRatio, sweep[1].HitRatio)
	}
}

func TestPublicSelfCorrection(t *testing.T) {
	f := setup(t)
	corr := &netcluster.Corrector{
		Resolver:   netcluster.NewResolver(f.world),
		Tracer:     netcluster.NewTracer(f.world, f.world.VantageASes()[0]),
		SampleSize: 3,
	}
	out := corr.Correct(f.na)
	if out.Corrected.Coverage() < f.na.Coverage() {
		t.Errorf("self-correction lowered coverage: %.4f -> %.4f",
			f.na.Coverage(), out.Corrected.Coverage())
	}
}

func TestPublicLogRoundTrip(t *testing.T) {
	f := setup(t)
	small := f.log.Slice(0, 600) // first 10 minutes
	var buf bytes.Buffer
	if err := netcluster.WriteLog(&buf, small); err != nil {
		t.Fatal(err)
	}
	back, err := netcluster.ReadLog(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(small.Requests) {
		t.Fatalf("requests: %d -> %d", len(small.Requests), len(back.Requests))
	}
	res := netcluster.ClusterLog(back, netcluster.NetworkAware{Table: f.table})
	if len(res.Clusters) == 0 {
		t.Fatal("re-read log did not cluster")
	}
}

func TestPublicProfilesMatchPaperScale(t *testing.T) {
	n := netcluster.NaganoProfile(1.0)
	if n.NumRequests != 11665713 || n.NumClients != 59582 {
		t.Errorf("Nagano(1.0) = %+v", n)
	}
	for _, cfg := range []netcluster.LogConfig{
		netcluster.ApacheProfile(0.01), netcluster.EW3Profile(0.01), netcluster.SunProfile(0.01),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}
