package netcluster_test

// Integration tests of the observability surface: the pcvproxy debug
// listener must serve parseable /debug/vars including the netcluster
// metric registry, and the batch tools' -metrics-out snapshots must
// carry nonzero counters from the paths they exercised. Binaries come
// from the shared buildTools cache (see cmd_integration_test.go).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// metricsSnapshot mirrors obsv.Snapshot's JSON for decoding test output.
type metricsSnapshot struct {
	Counters   map[string]uint64 `json:"counters"`
	Gauges     map[string]int64  `json:"gauges"`
	Histograms map[string]struct {
		Count uint64 `json:"count"`
		Sum   int64  `json:"sum"`
	} `json:"histograms"`
}

func TestPcvproxyMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Last-Modified", "Mon, 02 Jan 2006 15:04:05 GMT")
		fmt.Fprint(w, "origin body")
	}))
	defer origin.Close()

	cmd := exec.Command(filepath.Join(buildTools(t), "pcvproxy"),
		"-origin", origin.URL,
		"-listen", "127.0.0.1:0",
		"-metrics-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The proxy prints the resolved metrics URL to stderr before serving.
	var metricsURL string
	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(10 * time.Second)
	for metricsURL == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("pcvproxy exited before announcing its metrics address")
			}
			if strings.Contains(line, "metrics on ") {
				metricsURL = strings.TrimSpace(strings.TrimPrefix(line,
					"pcvproxy: metrics on "))
			}
		case <-deadline:
			t.Fatal("timed out waiting for pcvproxy to announce its metrics address")
		}
	}

	// /debug/vars must be parseable JSON carrying the netcluster registry.
	var vars struct {
		Netcluster metricsSnapshot `json:"netcluster"`
	}
	var lastErr error
	for i := 0; i < 50; i++ {
		resp, err := http.Get(metricsURL)
		if err != nil {
			lastErr = err
			time.Sleep(100 * time.Millisecond)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&vars)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("/debug/vars is not parseable JSON: %v", err)
		}
		lastErr = nil
		break
	}
	if lastErr != nil {
		t.Fatalf("metrics endpoint never came up at %s: %v", metricsURL, lastErr)
	}
	if vars.Netcluster.Counters == nil {
		t.Fatal("/debug/vars lacks the netcluster metric registry")
	}
}

func TestExperimentsMetricsOut(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	out := filepath.Join(t.TempDir(), "metrics.json")
	// The perf experiment drives every instrumented engine: compiled
	// lookups, sequential/parallel clustering, CLF streaming and the
	// strict-parser fallback demonstration.
	run(t, "experiments", "-scale", "0.02", "-metrics-out", out, "perf")
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap metricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("-metrics-out snapshot is not valid JSON: %v", err)
	}
	for _, c := range []string{
		"bgp.lookup.count",
		"weblog.parse.fast",
		"weblog.parse.strict",
		"cluster.parallel.records",
	} {
		if snap.Counters[c] == 0 {
			t.Errorf("counter %q is zero in the perf snapshot", c)
		}
	}
	if snap.Histograms["cluster.parallel.shard.clients"].Count == 0 {
		t.Error("shard-population histogram is empty after a parallel run")
	}
	if snap.Histograms["bgp.lookup.depth"].Count == 0 {
		t.Error("lookup-depth histogram is empty despite sampled lookups")
	}
}

func TestBenchdiffGate(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	dir := t.TempDir()
	oldRec := `{"benchmarks":[
		{"name":"BenchmarkLongestPrefixMatchCompiled","iterations":1,"ns_per_op":10,"allocs_per_op":0},
		{"name":"BenchmarkCLFParseStream","iterations":1,"ns_per_op":1000,"allocs_per_op":100}]}`
	okRec := `{"benchmarks":[
		{"name":"BenchmarkLongestPrefixMatchCompiled","iterations":1,"ns_per_op":11,"allocs_per_op":0},
		{"name":"BenchmarkCLFParseStream","iterations":1,"ns_per_op":1100,"allocs_per_op":100}]}`
	badRec := `{"benchmarks":[
		{"name":"BenchmarkLongestPrefixMatchCompiled","iterations":1,"ns_per_op":20,"allocs_per_op":0},
		{"name":"BenchmarkCLFParseStream","iterations":1,"ns_per_op":1000,"allocs_per_op":100}]}`
	oldPath := filepath.Join(dir, "old.json")
	okPath := filepath.Join(dir, "ok.json")
	badPath := filepath.Join(dir, "bad.json")
	for path, content := range map[string]string{oldPath: oldRec, okPath: okRec, badPath: badRec} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Within threshold: exits zero.
	run(t, "benchdiff", "-old", oldPath, "-new", okPath)
	// A 2x ns/op regression on a gated row must fail.
	cmd := exec.Command(filepath.Join(buildTools(t), "benchdiff"), "-old", oldPath, "-new", badPath)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("benchdiff accepted a 2x regression:\n%s", out)
	}
	if !strings.Contains(string(out), "FAIL") {
		t.Errorf("benchdiff failure output lacks FAIL marker:\n%s", out)
	}
}
