package netcluster_test

// TestInstrumentationOverheadBudget enforces the obsv design constraint:
// instrumentation costs at most 1% of the committed BENCH_clustering.json
// numbers on the hot paths. Rather than an A/B wall-clock comparison
// (noisy, and there is no uninstrumented build to compare against), the
// test is a cost model with measured unit prices:
//
//   - the unit costs of one atomic counter add, one histogram observe
//     and one span start/end pair are measured in-process right now;
//   - the number of such operations per benchmark op is derived from the
//     instrumentation sites (counts are amortized: engines memoize
//     lookups per distinct client, parsers tally in plain locals and
//     flush once per stream, spans wrap whole runs);
//   - modeled overhead is divided by the committed ns/op of the row the
//     ops ride on.
//
// The committed numbers come from the recording machine while unit costs
// come from this one, but both scale together within a small factor and
// the margin below the 1% budget is an order of magnitude.
//
// Per-line tallies in the CLF parser are plain register increments
// already included in the committed measurement; only the atomic flushes
// appear in the model. Compiled.Lookup carries zero instrumentation ops
// by design — one atomic per lookup would be ~40% of its ~11 ns/op,
// which is exactly why counting is hoisted to the memoized cluster
// layer. Its row is asserted at zero modeled overhead.

import (
	"context"
	"net/http"
	"testing"

	"github.com/netaware/netcluster/internal/benchfmt"
	"github.com/netaware/netcluster/internal/obsv"
)

func TestInstrumentationOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the Apache bench fixture and runs micro-benchmarks")
	}
	if raceEnabled {
		// The race detector instruments every atomic op (~15x), so unit
		// prices measured here cannot be compared against the committed
		// non-race timings. The budget is a claim about production builds.
		t.Skip("unit costs are not comparable under the race detector")
	}
	rec, err := benchfmt.ReadFile("BENCH_clustering.json")
	if err != nil {
		t.Fatalf("reading committed benchmark recording: %v", err)
	}

	// Unit prices, measured now. The guard registry keeps the probe
	// metrics out of the process-wide snapshot.
	reg := obsv.NewRegistry()
	probeC := reg.Counter("overhead.probe")
	probeH := reg.Histogram("overhead.probe")
	atomicNs := perOpNs(func(n int) {
		for i := 0; i < n; i++ {
			probeC.Add(1)
		}
	})
	observeNs := perOpNs(func(n int) {
		for i := 0; i < n; i++ {
			probeH.Observe(int64(i))
		}
	})
	spanNs := perOpNs(func(n int) {
		for i := 0; i < n; i++ {
			reg.StartSpan("overhead.probe").End()
		}
	})
	// Trace spans additionally allocate a record and store it into the
	// flight-recorder ring; priced with a private ring so the probes stay
	// out of the Default recorder.
	reg.SetRing(obsv.NewRing(1024))
	tspanNs := perOpNs(func(n int) {
		ctx := context.Background()
		for i := 0; i < n; i++ {
			_, sp := reg.StartTraceSpan(ctx, "overhead.probe")
			sp.End()
		}
	})
	// One cross-process propagation hop: formatting the trace header onto
	// an outbound request plus parsing it back on the receiving side.
	headerNs := perOpNs(func(n int) {
		hctx, sp := reg.StartTraceSpan(context.Background(), "overhead.probe")
		defer sp.End()
		h := make(http.Header, 4)
		base := context.Background()
		for i := 0; i < n; i++ {
			obsv.HTTPInject(hctx, h)
			obsv.HTTPExtract(base, h)
		}
	})
	t.Logf("unit costs: atomic add %.1f ns, observe %.1f ns, span %.0f ns, trace span %.0f ns, header hop %.0f ns",
		atomicNs, observeNs, spanNs, tspanNs, headerNs)

	// Client populations behind the per-client amortized counters.
	f := perfSetup(t)
	naganoClients := float64(len(f.log.Clients()))
	apacheClients := float64(len(apacheLog.Clients()))

	rows := []struct {
		name    string
		atomics float64 // atomic counter/gauge ops per benchmark op
		obs     float64 // histogram observes per benchmark op
		spans   float64 // ASpan start/end pairs per benchmark op
		tspans  float64 // trace spans (start/attr/End + ring record) per op
		headers float64 // trace-header inject+extract hops per op
	}{
		// Compiled.Lookup itself: instrumented nowhere, on purpose.
		{"BenchmarkLongestPrefixMatchCompiled", 0, 0, 0, 0, 0},
		// The batch lookup kernel: like the single-probe walk it carries
		// zero instrumentation ops — counting and 1-in-64 depth sampling
		// are replayed by the memoized cluster layer (ClusterBatch), never
		// inside the kernel, so batching cannot tax the per-address cost.
		{"BenchmarkLookupBatch", 0, 0, 0, 0, 0},
		// StreamCLF: one parseTally flush (fast+strict+bytes counters)
		// and one "weblog.stream" trace span wrapping the whole pass.
		{"BenchmarkCLFParseStream", 3, 0, 0, 1, 0},
		// Sequential ClusterLog, plain table: one lookup counter per
		// distinct client plus at most one no-match counter, then the
		// three result flushes. One "cluster.log" trace span wraps the
		// run.
		{"BenchmarkClusterLogNetworkAware", 2*naganoClients + 3, 0, 0, 1, 0},
		// workers-1 falls back to the sequential path with the compiled
		// engine: per distinct client one lookup counter, at most one
		// no-match, and a 1-in-64 sampled depth observe; three flushes
		// and the sequential trace span per run.
		{"BenchmarkClusterLogParallel/workers-1", 2*apacheClients + 3, apacheClients / 64, 0, 1, 0},
		// The traced routed batch across 3 shards: one router.batch span,
		// per shard a router.shard span + header inject, and on each node
		// an extract plus node.batch/node.table spans — 10 trace spans and
		// 3 full header hops. Per-shard SLO stats cost a latency observe
		// and three counter/gauge ops, the node side two counters; the
		// router's own batch/addr counters round the atomics up to 17.
		{"BenchmarkRouterFanout", 17, 3, 0, 10, 3},
	}

	const budget = 0.01
	for _, row := range rows {
		committed, ok := rec.Find(row.name)
		if !ok {
			t.Errorf("committed recording lacks %s; rerun `make bench-json`", row.name)
			continue
		}
		overhead := row.atomics*atomicNs + row.obs*observeNs + row.spans*spanNs +
			row.tspans*tspanNs + row.headers*headerNs
		frac := overhead / committed.NsPerOp
		t.Logf("%-42s modeled %8.0f ns of %12.0f ns/op = %.3f%%",
			row.name, overhead, committed.NsPerOp, 100*frac)
		if frac > budget {
			t.Errorf("%s: modeled instrumentation overhead %.2f%% exceeds the %.0f%% budget",
				row.name, 100*frac, 100*budget)
		}
	}
}

// perOpNs benchmarks f and returns the measured cost of one iteration.
func perOpNs(f func(n int)) float64 {
	r := testing.Benchmark(func(b *testing.B) { f(b.N) })
	return float64(r.T.Nanoseconds()) / float64(r.N)
}
