package netcluster_test

// Integration tests of the tracing surface: a live pcvproxy must serve
// parseable Prometheus text exposition on /metrics with histogram buckets
// and derived quantiles; clusterctl -trace-out must round-trip a valid
// Chrome trace_event file showing the parallel shard fan-out; and
// pcvproxy -metrics-out must flush a JSON snapshot on SIGINT. Binaries
// come from the shared buildTools cache (see cmd_integration_test.go).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
)

// startPcvproxy launches the proxy binary with a stderr line feed and a
// kill-on-cleanup guard. Callers sequence on the announce lines.
func startPcvproxy(t *testing.T, args ...string) (*exec.Cmd, <-chan string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), "pcvproxy"), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	return cmd, lines
}

// awaitLine consumes the stderr feed until a line containing substr
// appears, failing the test after ten seconds.
func awaitLine(t *testing.T, lines <-chan string, substr string) string {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("pcvproxy exited before printing %q", substr)
			}
			if strings.Contains(line, substr) {
				return line
			}
		case <-deadline:
			t.Fatalf("timed out waiting for pcvproxy to print %q", substr)
		}
	}
}

// httpGetRetry polls url until the listener accepts, then returns the body.
func httpGetRetry(t *testing.T, url string) (string, http.Header) {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ {
		resp, err := http.Get(url)
		if err != nil {
			lastErr = err
			time.Sleep(100 * time.Millisecond)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header
	}
	t.Fatalf("GET %s never succeeded: %v", url, lastErr)
	return "", nil
}

// parsePrometheusText structurally validates a text-format 0.0.4 payload:
// every non-comment line is `name[{labels}] value`, every family carries
// exactly one TYPE declaration, and no series repeats. Returns series
// keyed by name+labels with their parsed values.
func parsePrometheusText(t *testing.T, body string) map[string]float64 {
	t.Helper()
	types := map[string]string{}
	series := map[string]float64{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE comment: %q", ln+1, line)
			}
			if _, dup := types[fields[2]]; dup {
				t.Errorf("line %d: duplicate TYPE declaration for %s", ln+1, fields[2])
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: not a series line: %q", ln+1, line)
		}
		key, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: unparseable sample value %q: %v", ln+1, val, err)
		}
		if _, dup := series[key]; dup {
			t.Errorf("line %d: duplicate series %q", ln+1, key)
		}
		series[key] = v

		// Every series must belong to a declared family: exact name, or
		// the histogram base after stripping _bucket/_sum/_count.
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if _, ok := types[name]; ok {
			continue
		}
		declared := false
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, found := strings.CutSuffix(name, suf); found {
				if _, ok := types[base]; ok {
					declared = true
				}
				break
			}
		}
		if !declared {
			t.Errorf("line %d: series %s has no TYPE declaration", ln+1, name)
		}
	}
	return series
}

func TestPcvproxyPrometheusScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Last-Modified", "Mon, 02 Jan 2006 15:04:05 GMT")
		fmt.Fprint(w, "origin body")
	}))
	defer origin.Close()

	_, lines := startPcvproxy(t,
		"-origin", origin.URL,
		"-listen", "127.0.0.1:0",
		"-metrics-addr", "127.0.0.1:0")

	metricsLine := awaitLine(t, lines, "metrics on ")
	metricsURL := strings.TrimSpace(strings.TrimPrefix(metricsLine, "pcvproxy: metrics on "))
	debugBase := strings.TrimSuffix(metricsURL, "/debug/vars")

	routes := awaitLine(t, lines, "debug routes:")
	for _, want := range []string{"/metrics", "/debug/trace", "/debug/pprof", "/debug/vars"} {
		if !strings.Contains(routes, want) {
			t.Errorf("debug-route banner missing %s: %q", want, routes)
		}
	}

	cachingLine := awaitLine(t, lines, "caching ")
	fields := strings.Fields(cachingLine) // "pcvproxy: caching <origin> on <addr> ..."
	var proxyAddr string
	for i, f := range fields {
		if f == "on" && i+1 < len(fields) {
			proxyAddr = fields[i+1]
		}
	}
	if proxyAddr == "" {
		t.Fatalf("cannot find proxy address in %q", cachingLine)
	}

	// Drive traffic: a miss then hits on the same key, so request counters
	// and the httpproxy.request duration histogram have samples.
	for i := 0; i < 4; i++ {
		body, _ := httpGetRetry(t, "http://"+proxyAddr+"/page.html")
		if body != "origin body" {
			t.Fatalf("proxy returned %q", body)
		}
	}

	body, hdr := httpGetRetry(t, debugBase+"/metrics")
	if ct := hdr.Get("Content-Type"); ct != obsv.PrometheusContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, obsv.PrometheusContentType)
	}
	series := parsePrometheusText(t, body)

	if series["netcluster_httpproxy_requests_total"] == 0 {
		t.Error("netcluster_httpproxy_requests_total is zero after driving requests")
	}
	if series["netcluster_httpproxy_hits_total"] == 0 {
		t.Error("netcluster_httpproxy_hits_total is zero after repeat requests")
	}
	var buckets, p99s, inf int
	for key := range series {
		if strings.Contains(key, "_bucket{le=") {
			buckets++
			if strings.Contains(key, `le="+Inf"`) {
				inf++
			}
		}
		if strings.HasSuffix(key, "_p99") {
			p99s++
		}
	}
	if buckets == 0 || inf == 0 {
		t.Errorf("exposition lacks histogram buckets (%d buckets, %d +Inf)", buckets, inf)
	}
	if p99s == 0 {
		t.Error("exposition lacks derived _p99 quantile gauges")
	}
	// The request span histogram specifically must have samples.
	if series["netcluster_httpproxy_request_ns_count"] == 0 {
		t.Error("httpproxy.request span histogram has no samples")
	}

	// The same process must also serve its flight recorder as a valid
	// Chrome trace.
	trace, _ := httpGetRetry(t, debugBase+"/debug/trace")
	if _, err := obsv.ValidateChromeTrace([]byte(trace)); err != nil {
		t.Errorf("/debug/trace payload invalid: %v", err)
	}
}

func TestClusterctlTraceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	dir := t.TempDir()

	logOut, _ := run(t, "loggen", "-profile", "Nagano", "-scale", "0.005", "-seed", "3")
	logPath := filepath.Join(dir, "nagano.log")
	if err := os.WriteFile(logPath, []byte(logOut), 0o644); err != nil {
		t.Fatal(err)
	}
	tablesDir := filepath.Join(dir, "tables")
	if err := os.Mkdir(tablesDir, 0o755); err != nil {
		t.Fatal(err)
	}
	run(t, "bgpgen", "-all", "-dir", tablesDir, "-scale", "0.005", "-seed", "3")

	tracePath := filepath.Join(dir, "trace.json")
	run(t, "clusterctl",
		"-log", logPath,
		"-table", filepath.Join(tablesDir, "oregon.txt"),
		"-table", filepath.Join(tablesDir, "att-bgp.txt"),
		"-workers", "4",
		"-trace-out", tracePath,
		"-top", "3")

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("clusterctl -trace-out wrote nothing: %v", err)
	}
	n, err := obsv.ValidateChromeTrace(data)
	if err != nil {
		t.Fatalf("trace file fails Chrome trace_event validation: %v", err)
	}
	if n == 0 {
		t.Fatal("trace file holds no events")
	}

	// The acceptance criterion: the parallel fan-out is visible — shard
	// spans under the run root, plus the compile and merge phases.
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name]++
		}
	}
	for _, want := range []string{"clusterctl.run", "bgp.compile", "cluster.parallel", "cluster.parallel.merge"} {
		if names[want] == 0 {
			t.Errorf("trace lacks a %q span (got %v)", want, names)
		}
	}
	if names["cluster.parallel.shard"] < 2 {
		t.Errorf("trace shows %d shard spans, want the -workers 4 fan-out", names["cluster.parallel.shard"])
	}

	// The standalone checker agrees.
	out, _ := run(t, "tracecheck", tracePath)
	if !strings.Contains(out, "ok, ") {
		t.Errorf("tracecheck output: %q", out)
	}
}

func TestPcvproxyMetricsOutOnSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "body")
	}))
	defer origin.Close()

	outPath := filepath.Join(t.TempDir(), "metrics.json")
	cmd, lines := startPcvproxy(t,
		"-origin", origin.URL,
		"-listen", "127.0.0.1:0",
		"-metrics-out", outPath)

	cachingLine := awaitLine(t, lines, "caching ")
	fields := strings.Fields(cachingLine)
	var proxyAddr string
	for i, f := range fields {
		if f == "on" && i+1 < len(fields) {
			proxyAddr = fields[i+1]
		}
	}
	if proxyAddr == "" {
		t.Fatalf("cannot find proxy address in %q", cachingLine)
	}
	httpGetRetry(t, "http://"+proxyAddr+"/x")

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	awaitLine(t, lines, "metrics snapshot written to")
	if err := cmd.Wait(); err != nil {
		t.Fatalf("pcvproxy did not exit cleanly after SIGINT: %v", err)
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("-metrics-out snapshot missing: %v", err)
	}
	var snap metricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("-metrics-out snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["httpproxy.requests"] == 0 {
		t.Error("shutdown snapshot lost the request counter")
	}
}
